"""The serve test harness: an in-process cluster with injectable faults.

:class:`ServeCluster` runs a real :class:`~repro.serve.server.ServeServer`
— real sockets, real protocol, the production client — on an event loop
in a background thread, and exposes the fault surface the robustness
tests drive deterministically:

* ``kill_shard`` / ``restart_shard`` — SIGKILL-style worker death and
  restore-from-snapshot, mid-ingest;
* ``set_shard_delay`` — a slow consumer, to saturate the bounded queue
  and trigger client-visible flow control;
* the client's ``frame_hook`` (:class:`DropFirstSend`,
  :class:`DuplicateEverySend`, :class:`SwapAdjacentSends`) — dropped,
  duplicated and reordered batches on the wire;
* ``ServeClient.abort()`` — mid-stream disconnect, including
  :meth:`ServeCluster.half_frame_disconnect` which cuts the socket in
  the middle of a batch frame.

Every cluster event is appended to a log (written to ``log_path`` when
given) so CI can upload the harness transcript as an artifact.

The module also provides the equivalence vocabulary: synthetic stream
generation (:func:`make_stream`), the single-process reference fold
(:func:`offline_reference`) and deep state comparison
(:func:`assert_same_profile_state`) covering TNV entry order, health
counters and exact statistics — not just rendered metrics.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import threading
import time
import urllib.request
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import Site, SiteKind
from repro.serve import protocol as proto
from repro.serve.client import ServeClient
from repro.serve.server import ServeServer

Event = Tuple[Site, int]


# ----------------------------------------------------------------------
# synthetic streams and the offline reference
# ----------------------------------------------------------------------


def make_sites(count: int, kind: SiteKind = SiteKind.LOAD) -> List[Site]:
    """``count`` distinct synthetic sites spread over a few procedures."""
    return [
        Site(
            kind=kind,
            program="synth",
            procedure=f"proc{index % 3}",
            label=f"site{index}",
            opcode=kind.value,
        )
        for index in range(count)
    ]


def make_stream(
    num_sites: int = 8,
    num_events: int = 600,
    seed: int = 0,
    kind: SiteKind = SiteKind.LOAD,
) -> List[Event]:
    """A deterministic, value-skewed (site, value) stream.

    Values mix invariant favorites, zeros and noise so the profiles
    exercise LVP runs, TNV promotion/eviction and the %Zeros metric —
    the state a sharding bug would corrupt first.
    """
    rng = random.Random(seed)
    sites = make_sites(num_sites, kind=kind)
    events: List[Event] = []
    for _ in range(num_events):
        index = rng.randrange(num_sites)
        roll = rng.random()
        if roll < 0.45:
            value = index * 3 + 1  # the site's favorite: invariance
        elif roll < 0.65:
            value = 0  # zeros
        elif roll < 0.8:
            value = events[-1][1] if events else 0  # runs: LVP adjacency
        else:
            value = rng.randrange(64)  # churn
        events.append((sites[index], value))
    return events


def offline_reference(
    events: Iterable[Event],
    config: Optional[TNVConfig] = None,
    exact: bool = True,
    name: str = "",
) -> ProfileDatabase:
    """The ground truth: one process, one event at a time, stream order."""
    db = ProfileDatabase(config=config, exact=exact, name=name)
    for site, value in events:
        db.record(site, value)
    return db


# ----------------------------------------------------------------------
# deep state comparison
# ----------------------------------------------------------------------


def _exact_state(stats) -> Optional[tuple]:
    if stats is None:
        return None
    return (
        sorted(stats._histogram.items()),
        stats._total,
        stats._zeros,
        stats._lvp_hits,
        (stats._has_first, stats._first if stats._has_first else None),
        (stats._has_last, stats._last if stats._has_last else None),
    )


def profile_state(profile) -> dict:
    """Everything that defines a :class:`SiteProfile`'s state.

    ``tnv.to_dict()`` preserves entry order and the health counters;
    the scalars cover LVP/zeros/boundary state; ``exact`` is the full
    reference histogram.
    """
    return {
        "scalars": (
            profile._total,
            profile._zeros,
            profile._lvp_hits,
            (profile._has_first, profile._first if profile._has_first else None),
            (profile._has_last, profile._last if profile._has_last else None),
        ),
        "tnv": profile.tnv.to_dict(),
        "exact": _exact_state(profile.exact),
    }


def db_state(db: ProfileDatabase) -> Dict[Site, dict]:
    return {site: profile_state(p) for site, p in db._profiles.items()}


def assert_same_profile_state(actual: ProfileDatabase, expected: ProfileDatabase) -> None:
    """Site-for-site state identity (order-insensitive across sites).

    Shards own disjoint site subsets, so a merged database lists sites
    in shard order rather than stream order; every query surface sorts,
    so cross-site order is not part of the contract.  *Within* a site,
    everything is: TNV entry order, health counters, exact stats.
    """
    actual_state = db_state(actual)
    expected_state = db_state(expected)
    assert sorted(actual_state) == sorted(expected_state), (
        f"site sets differ: {len(actual_state)} vs {len(expected_state)}"
    )
    for site in expected_state:
        assert actual_state[site] == expected_state[site], (
            f"state mismatch at {site.qualified_name()}:\n"
            f"  actual:   {actual_state[site]}\n"
            f"  expected: {expected_state[site]}"
        )


# ----------------------------------------------------------------------
# client-side fault hooks (wire-level: drop / duplicate / reorder)
# ----------------------------------------------------------------------


class DropFirstSend:
    """Swallow the first transmission of selected seqs; retries pass."""

    def __init__(self, seqs: Iterable[int]) -> None:
        self.pending = set(seqs)
        self.dropped: List[int] = []

    def __call__(self, message: dict) -> Optional[List[dict]]:
        seq = message.get("seq")
        if seq in self.pending:
            self.pending.discard(seq)
            self.dropped.append(seq)
            return []
        return None


class DuplicateEverySend:
    """Every batch frame goes out twice back to back."""

    def __init__(self) -> None:
        self.duplicated = 0

    def __call__(self, message: dict) -> List[dict]:
        self.duplicated += 1
        return [message, message]


class SwapAdjacentSends:
    """Hold every even-positioned batch and emit it after its successor."""

    def __init__(self) -> None:
        self._held: Optional[dict] = None
        self.swapped = 0

    def __call__(self, message: dict) -> List[dict]:
        if self._held is None:
            self._held = message
            return []
        held, self._held = self._held, None
        self.swapped += 1
        return [message, held]


# ----------------------------------------------------------------------
# the cluster fixture
# ----------------------------------------------------------------------


class ServeCluster:
    """A live serve daemon on a background event loop, as a context manager.

    All the async server surface is exposed synchronously (each call
    round-trips through the loop thread), so tests read as straight-line
    scripts.  Use ``log_path`` to keep a transcript for CI artifacts.
    """

    def __init__(self, log_path: Optional[str] = None, **server_kwargs) -> None:
        self.server = ServeServer(**server_kwargs)
        self.log_path = log_path
        self.events: List[str] = []
        self._loop = asyncio.new_event_loop()
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ServeCluster":
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="serve-cluster", daemon=True
        )
        self._thread.start()
        self.run(self.server.start())
        self.log(
            f"cluster up: {self.server.nshards} shard(s) [{self.server.runtime}] "
            f"ingest={self.ingest_port} http={self.http_port} "
            f"queue_size={self.server.queue_size}"
        )
        return self

    def stop(self, checkpoint: bool = True) -> None:
        if self._thread is None:
            return
        self.log(f"cluster stopping (checkpoint={checkpoint})")
        self.log(f"final counters: {json.dumps(self.server.counters, sort_keys=True)}")
        self.run(self.server.stop(checkpoint=checkpoint))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop.close()
        if self.log_path:
            with open(self.log_path, "a") as handle:
                for line in self.events:
                    handle.write(line + "\n")

    def __enter__(self) -> "ServeCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- plumbing -------------------------------------------------------

    def run(self, coro, timeout: float = 30.0):
        """Run a coroutine on the cluster loop and wait for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def log(self, message: str) -> None:
        self.events.append(f"[{time.monotonic() - self._started:8.3f}] {message}")

    @property
    def ingest_port(self) -> int:
        return self.server.ingest_port

    @property
    def http_port(self) -> int:
        return self.server.http_port

    # -- clients --------------------------------------------------------

    def client(self, client_id: str, stream: str = "", **kwargs) -> ServeClient:
        client = ServeClient(
            "127.0.0.1", self.ingest_port, client_id, stream=stream, **kwargs
        )
        client.connect()
        self.log(f"client {client_id} connected (stream={stream!r})")
        return client

    def half_frame_disconnect(
        self, client_id: str, full_batches: List[Tuple[List[Site], List[int]]],
        partial_sites: List[Site], partial_values: List[int],
    ) -> None:
        """Push ``full_batches``, then die halfway through one more frame.

        Raw-socket edition of the mid-stream disconnect fault: the final
        batch frame is truncated at half its bytes, so the server must
        apply every full batch and none of the partial one.
        """
        sock = socket.create_connection(("127.0.0.1", self.ingest_port), timeout=5)
        try:
            sock.sendall(proto.encode_frame(proto.hello(client_id, "")))
            table: Dict[Site, int] = {}

            def sids_for(sites: List[Site]) -> List[int]:
                new = list(dict.fromkeys(s for s in sites if s not in table))
                if new:
                    base = len(table)
                    payloads = [proto.site_to_payload(site) for site in new]
                    for site in new:
                        table[site] = len(table)
                    sock.sendall(proto.encode_frame(proto.sites_frame(base, payloads)))
                return [table[site] for site in sites]

            for seq, (sites, values) in enumerate(full_batches):
                sock.sendall(
                    proto.encode_frame(proto.batch(seq, sids_for(sites), values))
                )
            # Drain server→client frames until the last full batch is
            # acked: leaving unread data in the receive buffer would turn
            # the close below into a TCP RST that can destroy the full
            # batches still in flight — a different fault than the
            # truncated-frame one this method injects.
            decoder = proto.FrameDecoder()
            sock.settimeout(10.0)
            acked = set()
            while len(full_batches) - 1 not in acked:
                data = sock.recv(1 << 16)
                if not data:
                    raise AssertionError("server closed before acking full batches")
                for message in decoder.feed(data):
                    if message.get("t") == "ack":
                        acked.add(message.get("seq"))
            frame = proto.encode_frame(
                proto.batch(len(full_batches), sids_for(partial_sites), partial_values)
            )
            sock.sendall(frame[: max(5, len(frame) // 2)])
        finally:
            sock.close()
        self.log(
            f"client {client_id} disconnected mid-frame after "
            f"{len(full_batches)} complete batches"
        )

    def push_events(
        self,
        client_id: str,
        events: Iterable[Event],
        stream: str = "",
        batch_size: int = 64,
        **client_kwargs,
    ) -> ServeClient:
        """Convenience: connect, push, flush, close; returns the client."""
        client = self.client(client_id, stream=stream, **client_kwargs)
        pushed = client.push_events(events, batch_size=batch_size)
        client.flush()
        client.close()
        self.log(
            f"client {client_id} pushed {pushed} events "
            f"({client.counters['batches']} batches, "
            f"{client.counters['retries']} retries)"
        )
        return client

    # -- faults ---------------------------------------------------------

    def kill_shard(self, index: int) -> int:
        dropped = self.run(self.server.kill_shard(index))
        self.log(f"shard {index} killed ({dropped} queued batches lost)")
        return dropped

    def restart_shard(self, index: int) -> None:
        self.run(self.server.restart_shard(index))
        self.log(f"shard {index} restarted from snapshot+journal")

    def set_shard_delay(self, index: int, seconds: float) -> None:
        async def _set() -> None:
            self.server.set_shard_delay(index, seconds)

        self.run(_set())
        self.log(f"shard {index} delay set to {seconds}s")

    def checkpoint(self) -> None:
        self.run(self.server.checkpoint_all())
        self.log("checkpoint forced on all shards")

    # -- queries --------------------------------------------------------

    def http(self, path: str, timeout: float = 30.0) -> str:
        url = f"http://127.0.0.1:{self.http_port}{path}"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8")

    def http_json(self, path: str) -> dict:
        return json.loads(self.http(path))

    def profile_text(self, kind: str = "load", top: int = 20) -> str:
        return self.http(f"/profile?kind={kind}&top={top}")

    def merged_database(self) -> ProfileDatabase:
        return self.run(self.server.merged_database())

    def queue_depth(self) -> float:
        return self.server.gauges.get("serve.queue_depth", 0.0)
