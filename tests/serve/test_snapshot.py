"""Snapshot/restore: checkpoints, journal replay, and the golden test.

The contract: restore(snapshot + journal tail) reconstructs exactly the
state the server acked — so a rolling restart is invisible in every
query surface, byte for byte.
"""

import pytest

from repro.core.profile import TNVConfig
from repro.core.sites import SiteKind
from repro.serve import protocol as proto
from repro.serve.shard import ShardCore, ShardStateError, resume_seq

from tests.serve.harness import (
    ServeCluster,
    assert_same_profile_state,
    db_state,
    make_stream,
    offline_reference,
)


def _feed_core(core, events, seq_base=0, batch_size=20, client="c"):
    """Push a stream into one core as single-shard batches."""
    seq = seq_base
    for start in range(0, len(events), batch_size):
        batch = events[start : start + batch_size]
        payloads, index_of, sidx, values = [], {}, [], []
        for site, value in batch:
            local = index_of.get(site)
            if local is None:
                local = index_of[site] = len(payloads)
                payloads.append(proto.site_to_payload(site))
            sidx.append(local)
            values.append(value)
        assert core.submit(client, seq, payloads, sidx, values) == [seq]
        seq += 1
    return seq


def test_core_checkpoint_restore_round_trip(tmp_path):
    events = make_stream(num_sites=6, num_events=500, seed=20)
    config = TNVConfig(capacity=6, steady=3, clear_interval=64)
    core = ShardCore(0, str(tmp_path), config=config, exact=True)
    seq = _feed_core(core, events[:300])
    core.checkpoint()
    _feed_core(core, events[300:], seq_base=seq)  # journal-only tail
    straight_state = db_state(core.db)
    applied = dict(core.applied)
    core.close()

    restored = ShardCore(0, str(tmp_path), config=config, exact=True, restore=True)
    assert db_state(restored.db) == straight_state
    assert restored.applied == applied
    assert restored.counters["restores"] == 1
    restored.close()


def test_core_restore_is_idempotent_and_dedups_overlap(tmp_path):
    """Crash between snapshot-rename and journal-truncate: the journal
    still holds pre-snapshot records, which replay as duplicates."""
    events = make_stream(num_sites=5, num_events=200, seed=21)
    core = ShardCore(0, str(tmp_path), exact=True)
    seq = _feed_core(core, events)
    # Snapshot *without* truncating the journal — the crash window.
    wal_bytes = core.wal_path.read_bytes()
    core.checkpoint()
    core.close()
    core.wal_path.write_bytes(wal_bytes)  # resurrect the stale journal

    restored = ShardCore(0, str(tmp_path), exact=True, restore=True)
    assert restored.counters["duplicates"] >= seq  # every record deduped
    assert_same_profile_state(restored.db, offline_reference(events))
    restored.close()


def test_core_restore_tolerates_torn_journal_tail(tmp_path):
    events = make_stream(num_sites=5, num_events=200, seed=22)
    core = ShardCore(0, str(tmp_path), exact=True)
    _feed_core(core, events)
    core.close()
    with open(core.wal_path, "ab") as handle:
        handle.write(b"\x00\x00\x10\x00partial-record-then-crash")
    restored = ShardCore(0, str(tmp_path), exact=True, restore=True)
    assert_same_profile_state(restored.db, offline_reference(events))
    restored.close()


def test_snapshot_identity_checks(tmp_path):
    core = ShardCore(0, str(tmp_path), exact=True)
    _feed_core(core, make_stream(num_sites=3, num_events=50, seed=23))
    core.checkpoint()
    core.close()
    wrong = tmp_path / "shard-001.snap"
    wrong.write_bytes(core.snapshot_path.read_bytes())
    with pytest.raises(ShardStateError, match="belongs to shard"):
        ShardCore(1, str(tmp_path), exact=True, restore=True)
    core.snapshot_path.write_bytes(b"not a pickle")
    with pytest.raises(ShardStateError, match="unreadable"):
        ShardCore(0, str(tmp_path), exact=True, restore=True)


def test_resume_seq_is_min_over_shards():
    assert resume_seq([]) == 0
    assert resume_seq([-1, -1]) == 0
    assert resume_seq([4, 7, 4]) == 5


def test_golden_restore_profile_byte_identical(tmp_path):
    """checkpoint → kill server → --restore: /profile is byte-identical
    to an uninterrupted run over the same stream."""
    events = make_stream(num_sites=10, num_events=1200, seed=24)
    snapdir = str(tmp_path / "snaps")
    kwargs = dict(shards=2, queue_size=16, checkpoint_interval=None)

    # Interrupted run: part 1 checkpointed, part 2 journal-only, then a
    # stop with no final checkpoint (the crash).
    with ServeCluster(snapshot_dir=snapdir, **kwargs) as first:
        client = first.client("c1", stream="synth.train")
        client.push_events(events[:700], batch_size=35)
        client.flush()
        first.checkpoint()
        client.push_events(events[700:900], batch_size=35)
        client.flush()
        client.close()
        first.stop(checkpoint=False)

    # Restored run finishes the stream.
    with ServeCluster(snapshot_dir=snapdir, restore=True, **kwargs) as second:
        client = second.client("c1", stream="synth.train")
        # The welcome resume point is exactly the batches already applied.
        assert client._next_seq == 26  # 20 + 6 batches of 35
        client.push_events(events[900:], batch_size=35)
        client.flush()
        client.close()
        restored_text = second.profile_text(kind="load", top=15)
        restored_json = second.http("/profile?format=json")
        restored_db = second.merged_database()

    # Uninterrupted control run over the same stream.
    with ServeCluster(**kwargs) as control:
        control.push_events("c1", events, stream="synth.train", batch_size=35)
        control_text = control.profile_text(kind="load", top=15)
        control_json = control.http("/profile?format=json")

    assert restored_text == control_text
    assert restored_json == control_json
    assert_same_profile_state(
        restored_db, offline_reference(events, name="synth.train")
    )


def test_http_endpoints_surface(tmp_path):
    """The query surface: health, inspect, timeseries, checkpoint, 404."""
    events = make_stream(num_sites=6, num_events=400, seed=25)
    with ServeCluster(
        shards=2, snapshot_dir=str(tmp_path), timeseries_interval=100
    ) as cluster:
        cluster.push_events("c1", events, stream="s", batch_size=40)
        health = cluster.http_json("/healthz")
        assert health["status"] == "ok" and health["alive"] == [True, True]
        inspect = cluster.http("/inspect?kind=load&top=5")
        assert "site" in inspect.lower()
        series = cluster.http_json("/timeseries")
        assert series["enabled"] is True and series["samples"]
        assert cluster.http_json("/checkpoint") == {"checkpointed": 2}
        assert (tmp_path / "shard-000.snap").exists()
        assert (tmp_path / "shard-001.snap").exists()
        try:
            cluster.http("/nope")
            assert False, "expected 404"
        except Exception as error:
            assert "404" in str(error)
