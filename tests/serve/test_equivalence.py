"""Sharded-fold equivalence: any partition == single-process fold.

The property the whole service stands on: per-site profile state
depends only on the site's own value subsequence, so hashing the site
space across shards and folding per-shard sub-batches yields state
identical to one process recording the stream event by event — TNV
entry order, health counters and exact statistics included.
"""

import tempfile
import threading

import pytest

from repro.analysis.tables import profile_table
from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import SiteKind
from repro.serve import protocol as proto
from repro.serve.shard import ShardCore

from tests.serve.harness import (
    ServeCluster,
    assert_same_profile_state,
    make_sites,
    make_stream,
    offline_reference,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def fold_through_shards(events, batch_sizes, shards, config, client="c"):
    """Route an event stream through real ShardCores, return the merge.

    Mirrors the server's routing exactly: every batch fans out to every
    shard as a self-contained (site-dictionary, indices, values)
    sub-batch, empty ones included, so per-shard sequences stay gapless.
    """
    with tempfile.TemporaryDirectory() as tmp:
        cores = [
            ShardCore(index, tmp, config=config, exact=True)
            for index in range(shards)
        ]
        position = 0
        seq = 0
        sizes = list(batch_sizes)
        while position < len(events):
            size = sizes[seq % len(sizes)] if sizes else 64
            batch = events[position : position + max(1, size)]
            position += max(1, size)
            buckets = [([], {}, [], []) for _ in range(shards)]
            for site, value in batch:
                owner = proto.shard_for_site(site, shards)
                payloads, index_of, sidx, values = buckets[owner]
                local = index_of.get(site)
                if local is None:
                    local = index_of[site] = len(payloads)
                    payloads.append(proto.site_to_payload(site))
                sidx.append(local)
                values.append(value)
            for index, core in enumerate(cores):
                payloads, _, sidx, values = buckets[index]
                done = core.submit(client, seq, payloads, sidx, values, journal=False)
                assert done == [seq]
            seq += 1
        merged = ProfileDatabase(config=config, exact=True)
        for core in cores:
            merged.merge(core.db)
        for core in cores:
            core.close()
        return merged


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_any_partition_matches_single_process(data):
    sites = make_sites(6)
    events = data.draw(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 7)),
            min_size=0,
            max_size=120,
        ),
        label="events",
    )
    stream = [(sites[index], value) for index, value in events]
    shards = data.draw(st.integers(1, 3), label="shards")
    batch_sizes = data.draw(
        st.lists(st.integers(1, 17), min_size=1, max_size=5), label="batch_sizes"
    )
    # Small TNV knobs so clearing/steady-state logic actually fires
    # inside these short streams.
    config = TNVConfig(capacity=4, steady=2, clear_interval=16)
    merged = fold_through_shards(stream, batch_sizes, shards, config)
    reference = offline_reference(stream, config=config, exact=True)
    assert_same_profile_state(merged, reference)


def test_record_batch_grouping_matches_per_event():
    """Pin the grouping identity the shard apply path relies on."""
    events = make_stream(num_sites=5, num_events=400, seed=11)
    config = TNVConfig(capacity=6, steady=3, clear_interval=50)
    per_event = offline_reference(events, config=config)
    grouped = ProfileDatabase(config=config, exact=True)
    # Whole-stream per-site grouping in first-appearance order — the
    # coarsest partition the service can produce.
    runs, order = {}, []
    for site, value in events:
        if site not in runs:
            runs[site] = []
            order.append(site)
        runs[site].append(value)
    for site in order:
        grouped.record_batch(site, runs[site])
    assert_same_profile_state(grouped, per_event)


def test_end_to_end_profile_byte_identity():
    """Acceptance: served /profile output is byte-identical to offline."""
    events = make_stream(num_sites=10, num_events=1500, seed=3)
    with ServeCluster(shards=3, queue_size=16, checkpoint_interval=100) as cluster:
        cluster.push_events("c1", events, stream="synth.train", batch_size=37)
        merged = cluster.merged_database()
        got_text = cluster.profile_text(kind="load", top=20)
        got_json = cluster.http("/profile?format=json")
    expected = offline_reference(events, name="synth.train")
    assert_same_profile_state(merged, expected)
    expected_text = profile_table(expected, SiteKind.LOAD, top=20).render()
    assert got_text == expected_text + "\n"
    assert got_json == expected.to_json() + "\n"


def test_concurrent_producers_with_queries_mid_stream():
    """Three disjoint producers at once, queried while ingesting."""
    streams = {
        f"client{index}": [
            (site, value)
            for site, value in make_stream(num_sites=6, num_events=800, seed=index)
        ]
        for index in range(3)
    }
    # Disjoint site spaces per producer (distinct program names).
    import dataclasses

    for index, (name, events) in enumerate(sorted(streams.items())):
        streams[name] = [
            (dataclasses.replace(site, program=f"prog{index}"), value)
            for site, value in events
        ]
    with ServeCluster(shards=2, queue_size=16) as cluster:
        errors = []

        def push(name, events):
            try:
                cluster.push_events(name, events, stream=name, batch_size=29)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append((name, error))

        threads = [
            threading.Thread(target=push, args=(name, events))
            for name, events in streams.items()
        ]
        for thread in threads:
            thread.start()
        # Query while ingest is in flight: must answer, not crash.
        mid_stats = cluster.http_json("/stats")
        assert mid_stats["runtime"] == "inline"
        cluster.http("/profile?kind=load&top=5")
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        merged = cluster.merged_database()
        final = cluster.http_json("/stats")
    reference = ProfileDatabase(exact=True)
    for name in sorted(streams):
        for site, value in streams[name]:
            reference.record(site, value)
    assert_same_profile_state(merged, reference)
    assert final["counters"]["serve.events"] == sum(
        len(events) for events in streams.values()
    )
