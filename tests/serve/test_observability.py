"""Serve-plane observability: /metrics, span trees, histograms, slow ops.

The contract under test is the PR 8 tentpole: a live Prometheus scrape
that works with no obs flag set, end-to-end trace propagation that
yields ONE coherent span tree even across shard death and client
reconnects (every server-side span parented under its batch's client
span), histograms whose merges survive shard generations, and the
slow-op log / shard-health surfaces in ``/stats``.
"""

import json

import pytest

from repro.obs.hist import Histogram
from repro.obs.trace import TRACER

from tests.serve.harness import DropFirstSend, ServeCluster, make_stream


@pytest.fixture
def tracer():
    """The process tracer, enabled and drained/disabled around the test."""
    TRACER.enable()
    yield TRACER
    TRACER.drain()
    TRACER.disable()


def _span_tree(spans):
    """Index spans and assert structural validity: unique ids, no orphans."""
    by_id = {}
    for span in spans:
        assert span["span_id"] not in by_id, f"duplicate span id {span['span_id']}"
        by_id[span["span_id"]] = span
    for span in spans:
        parent = span["parent_id"]
        assert parent is None or parent in by_id, (
            f"orphan span {span['name']} ({span['span_id']}): "
            f"parent {parent} not in trace"
        )
    by_name = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)
    return by_id, by_name


def _assert_serve_tree(spans, shards):
    """Every server-side span hangs under its batch's client span."""
    by_id, by_name = _span_tree(spans)
    batch_ids = {span["span_id"] for span in by_name.get("serve.batch", [])}
    assert batch_ids, "no client serve.batch spans recorded"
    for name in ("serve.enqueue", "serve.journal", "serve.fold", "serve.ack"):
        for span in by_name.get(name, []):
            assert span["parent_id"] in batch_ids, (
                f"{name} span {span['span_id']} not under a client batch span"
            )
    # each acked batch folded on every shard: journal/fold spans per shard
    assert len(by_name["serve.fold"]) == shards * len(by_name["serve.ack"])
    return by_name


# ----------------------------------------------------------------------
# /metrics scrape
# ----------------------------------------------------------------------


class TestMetricsEndpoint:
    def test_scrape_works_with_no_obs_flags(self):
        """The acceptance check: a live 2-shard ingest scrapes Prometheus
        text with e2e latency buckets and per-shard queue gauges, with
        the global obs registry never enabled."""
        with ServeCluster(shards=2) as cluster:
            cluster.push_events("c1", make_stream(num_sites=12, num_events=800))
            text = cluster.http("/metrics")
        lines = text.splitlines()
        assert "# TYPE repro_serve_batch_e2e histogram" in lines
        assert any(
            line.startswith('repro_serve_batch_e2e_bucket{le="') for line in lines
        )
        count = next(
            line for line in lines if line.startswith("repro_serve_batch_e2e_count")
        )
        assert int(count.split()[-1]) > 0
        for shard in (0, 1):
            assert f'repro_serve_shard_queue_depth{{shard="{shard}"}}' in text
            assert f'repro_serve_shard_up{{shard="{shard}"}} 1' in text
        assert any(line.startswith("repro_serve_batches ") for line in lines)

    def test_scrape_shows_zeroed_families_before_traffic(self):
        """Eager histogram creation: a scrape before any ingest already
        exposes every family, so dashboards don't 404 on cold starts."""
        with ServeCluster(shards=1) as cluster:
            text = cluster.http("/metrics")
        for family in (
            "repro_serve_batch_e2e",
            "repro_serve_journal_sync",
            "repro_serve_shard_fold",
            "repro_serve_http_request",
            "repro_serve_batch_events",
        ):
            assert f"# TYPE {family} histogram" in text
            assert f"{family}_count 0" in text

    def test_content_type_is_prometheus_text(self):
        import urllib.request

        with ServeCluster(shards=1) as cluster:
            url = f"http://127.0.0.1:{cluster.http_port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                assert response.headers["Content-Type"].startswith("text/plain")


# ----------------------------------------------------------------------
# trace propagation
# ----------------------------------------------------------------------


class TestTracePropagation:
    def test_single_tree_inline(self, tracer):
        with ServeCluster(shards=2, runtime="inline") as cluster:
            cluster.push_events("c1", make_stream(num_sites=10, num_events=600))
        by_name = _assert_serve_tree(tracer.drain(), shards=2)
        acked = len(by_name["serve.ack"])
        assert len(by_name["serve.batch"]) == acked
        assert len(by_name["serve.enqueue"]) == acked

    def test_single_tree_process_runtime(self, tracer):
        """Worker processes build span records on their own clock and ship
        them home; adoption must still yield one coherent tree."""
        with ServeCluster(shards=2, runtime="process") as cluster:
            cluster.push_events("c1", make_stream(num_sites=10, num_events=600))
        _assert_serve_tree(tracer.drain(), shards=2)

    def test_tree_survives_shard_kill_and_restart(self, tracer, tmp_path):
        """SIGKILL-style shard death between pushes: spans from both shard
        generations join the same tree — no orphans, no duplicate ids."""
        with ServeCluster(
            shards=2, runtime="inline", snapshot_dir=str(tmp_path)
        ) as cluster:
            cluster.push_events("c1", make_stream(num_sites=10, num_events=400))
            cluster.checkpoint()
            cluster.kill_shard(0)
            cluster.restart_shard(0)
            cluster.push_events(
                "c2", make_stream(num_sites=10, num_events=400, seed=1)
            )
        _assert_serve_tree(tracer.drain(), shards=2)

    def test_tree_survives_dropped_frame_retry(self, tracer):
        """A dropped-then-retried batch reuses its deterministic span ids,
        so the retry cannot orphan children or duplicate the enqueue span."""
        with ServeCluster(shards=2, runtime="inline") as cluster:
            hook = DropFirstSend([1, 3])
            cluster.push_events(
                "c1",
                make_stream(num_sites=8, num_events=600),
                batch_size=32,
                frame_hook=hook,
            )
            assert hook.dropped == [1, 3]
        _assert_serve_tree(tracer.drain(), shards=2)

    def test_disabled_tracer_records_nothing(self):
        with ServeCluster(shards=1, runtime="inline") as cluster:
            cluster.push_events("c1", make_stream(num_events=200))
        assert TRACER.drain() == []


# ----------------------------------------------------------------------
# histograms across generations
# ----------------------------------------------------------------------


class TestServeHistograms:
    def test_client_hist_counts_every_acked_batch(self):
        with ServeCluster(shards=2) as cluster:
            client = cluster.push_events(
                "c1", make_stream(num_sites=8, num_events=640), batch_size=64
            )
        hist = client.hists["serve.client_batch_e2e"]
        assert hist.count == client.counters["batches"]
        assert hist.quantile(0.99) >= hist.quantile(0.5) > 0.0

    def test_fold_hists_accumulate_across_shard_generations(self, tmp_path):
        """Observations ride done-reports into server-side histograms, so
        a shard generation swap loses nothing already reported and the
        replacement keeps folding into the same family."""
        with ServeCluster(
            shards=1, runtime="inline", snapshot_dir=str(tmp_path)
        ) as cluster:
            cluster.push_events(
                "c1", make_stream(num_sites=8, num_events=320), batch_size=64
            )
            before = cluster.server.hists["serve.shard_fold"].count
            assert before > 0
            cluster.checkpoint()
            cluster.kill_shard(0)
            cluster.restart_shard(0)
            cluster.push_events(
                "c2",
                make_stream(num_sites=8, num_events=320, seed=1),
                batch_size=64,
            )
            after = cluster.server.hists["serve.shard_fold"].count
            assert after > before
            # the restarted shard's journal replay is muted: its private
            # hist only holds the post-restart live folds
            stats = cluster.http_json("/stats")
            shard_fold = stats["shards"][0]["hists"]["shard.fold"]
            assert shard_fold["count"] == after - before

    def test_stats_hists_merge_associatively(self):
        """The /stats histogram snapshots combine in any order — the
        property that lets an aggregator scrape several servers."""
        with ServeCluster(shards=2) as cluster:
            cluster.push_events("c1", make_stream(num_sites=8, num_events=400))
            stats = cluster.http_json("/stats")
        snaps = [shard["hists"]["shard.fold"] for shard in stats["shards"]]
        forward = Histogram.from_snapshot(snaps[0])
        forward.merge_snapshot(snaps[1])
        backward = Histogram.from_snapshot(snaps[1])
        backward.merge_snapshot(snaps[0])
        assert forward.snapshot() == backward.snapshot()
        assert forward.count == sum(snap["count"] for snap in snaps)


# ----------------------------------------------------------------------
# slow-op log + shard health
# ----------------------------------------------------------------------


class TestSlowOpsAndHealth:
    def test_zero_threshold_logs_every_fold_and_request(self):
        with ServeCluster(shards=1, slow_op_threshold=0.0) as cluster:
            cluster.push_events("c1", make_stream(num_events=200))
            stats = cluster.http_json("/stats")
        assert stats["slow_op_threshold"] == 0.0
        assert stats["counters"]["serve.slow_ops"] > 0
        ops = {record["op"] for record in stats["slow_ops"]}
        assert "shard0.fold" in ops
        for record in stats["slow_ops"]:
            assert record["seconds"] >= 0.0
            assert "op" in record and "detail" in record

    def test_default_threshold_logs_nothing_for_fast_ops(self):
        with ServeCluster(shards=1) as cluster:
            cluster.push_events("c1", make_stream(num_events=200))
            stats = cluster.http_json("/stats")
        assert stats["slow_ops"] == []
        assert "serve.slow_ops" not in stats["counters"]

    def test_stats_carries_shard_health(self, tmp_path):
        with ServeCluster(shards=2, snapshot_dir=str(tmp_path)) as cluster:
            cluster.push_events("c1", make_stream(num_sites=12, num_events=600))
            cluster.checkpoint()
            stats = cluster.http_json("/stats")
        for shard in stats["shards"]:
            assert shard["journal_bytes"] == 0  # checkpoint truncated it
            assert shard["snapshot_age_s"] is not None
            assert shard["last_fold_age_s"] is not None
            assert shard["last_fold_tick"] > 0
            assert shard["hists"]["shard.fold"]["count"] > 0

    def test_journal_bytes_grow_until_checkpoint(self, tmp_path):
        with ServeCluster(shards=1, snapshot_dir=str(tmp_path)) as cluster:
            cluster.push_events("c1", make_stream(num_events=300))
            grown = cluster.http_json("/stats")["shards"][0]["journal_bytes"]
            assert grown > 0
            cluster.checkpoint()
            reset = cluster.http_json("/stats")["shards"][0]["journal_bytes"]
            assert reset == 0


# ----------------------------------------------------------------------
# live dashboard
# ----------------------------------------------------------------------


class TestLiveDashboard:
    def test_renders_against_running_cluster(self):
        from repro.obs.dash import render_live_dashboard

        with ServeCluster(shards=2, slow_op_threshold=0.0) as cluster:
            cluster.push_events("c1", make_stream(num_sites=12, num_events=600))
            html = render_live_dashboard(
                f"http://127.0.0.1:{cluster.http_port}"
            )
        for section in (
            "Shard health",
            "Serve latency histograms",
            "serve.batch_e2e",
            "Producer sessions",
            "Slow operations",
            "raw /metrics scrape",
        ):
            assert section in html
        embedded = html.split('id="repro-live">')[1].split("</script>")[0]
        payload = json.loads(embedded)
        assert payload["healthz"]["shards"] == 2

    def test_unreachable_daemon_raises_oserror(self):
        from repro.obs.dash import render_live_dashboard

        with pytest.raises(OSError):
            render_live_dashboard("http://127.0.0.1:1", timeout=0.5)
