"""The worker-process shard runtime: same contract, real processes.

The inline runtime carries the heavy equivalence/fault matrix (it is
deterministic and cheap); these tests pin that the multiprocessing
deployment shape — spawn workers, bounded mp queues, pickled query
responses — honors the identical exactness and restart semantics.
"""

from tests.serve.harness import (
    ServeCluster,
    assert_same_profile_state,
    make_stream,
    offline_reference,
)


def test_process_runtime_end_to_end(tmp_path):
    events = make_stream(num_sites=8, num_events=800, seed=30)
    with ServeCluster(
        shards=2,
        runtime="process",
        queue_size=16,
        checkpoint_interval=10,
        snapshot_dir=str(tmp_path),
    ) as cluster:
        cluster.push_events("c1", events, stream="synth.train", batch_size=40)
        merged = cluster.merged_database()
        stats = cluster.http_json("/stats")
        assert stats["runtime"] == "process"
        assert [shard["alive"] for shard in stats["shards"]] == [True, True]
    assert_same_profile_state(merged, offline_reference(events, name="synth.train"))


def test_process_runtime_kill_and_restore(tmp_path):
    events = make_stream(num_sites=8, num_events=800, seed=31)
    with ServeCluster(
        shards=2,
        runtime="process",
        queue_size=16,
        checkpoint_interval=5,
        snapshot_dir=str(tmp_path),
    ) as cluster:
        client = cluster.client("c1", stream="s", timeout=30)
        client.push_events(events[:400], batch_size=25)
        client.flush()
        cluster.kill_shard(0)  # real SIGKILL on a real process
        cluster.restart_shard(0)
        client.push_events(events[400:], batch_size=25)
        client.flush()
        client.close()
        merged = cluster.merged_database()
    assert_same_profile_state(merged, offline_reference(events))
