"""Wire-protocol unit tests: framing, site payloads, shard routing."""

import struct
import zlib

import pytest

from repro.core.sites import Site, SiteKind
from repro.serve import protocol as proto
from repro.serve.protocol import FrameDecoder, ProtocolError

from tests.serve.harness import make_sites


def test_frame_round_trip():
    message = proto.batch(7, [0, 1, 0], [10, 20, 30])
    frames = list(FrameDecoder().feed(proto.encode_frame(message)))
    assert frames == [message]


def test_decoder_handles_byte_by_byte_delivery():
    messages = [proto.hello("c", "s"), proto.batch(0, [0], [1]), proto.bye()]
    blob = b"".join(proto.encode_frame(m) for m in messages)
    decoder = FrameDecoder()
    out = []
    for index in range(len(blob)):
        out.extend(decoder.feed(blob[index : index + 1]))
    assert out == messages
    assert decoder.pending_bytes == 0


def test_truncated_frame_is_never_yielded():
    frame = proto.encode_frame(proto.batch(3, [0, 0], [1, 2]))
    decoder = FrameDecoder()
    assert list(decoder.feed(frame[:-1])) == []
    assert decoder.pending_bytes == len(frame) - 1
    # the remaining byte completes it — atomicity, not loss
    assert list(decoder.feed(frame[-1:])) == [proto.batch(3, [0, 0], [1, 2])]


def test_oversized_frame_rejected():
    huge = struct.pack(">I", proto.MAX_FRAME + 1)
    with pytest.raises(ProtocolError):
        list(FrameDecoder().feed(huge))


def test_non_object_frame_rejected():
    frame = struct.pack(">I", 2) + b"[]"
    with pytest.raises(ProtocolError):
        list(FrameDecoder().feed(frame))


def test_site_payload_round_trip():
    site = Site(
        kind=SiteKind.LOAD, program="p", procedure="f", label="L1", opcode="load"
    )
    assert proto.site_from_payload(proto.site_to_payload(site)) == site


def test_bad_site_payload_raises():
    with pytest.raises(ProtocolError):
        proto.site_from_payload(["not-a-kind", "p", "f", "L", "op"])
    with pytest.raises(ProtocolError):
        proto.site_from_payload(["load", "p"])


def test_shard_routing_is_stable_and_in_range():
    sites = make_sites(50)
    for shards in (1, 2, 3, 7):
        for site in sites:
            index = proto.shard_for_site(site, shards)
            assert 0 <= index < shards
            assert index == proto.shard_for_site(site, shards)  # deterministic


def test_shard_routing_matches_crc32_of_identity():
    site = make_sites(1)[0]
    key = f"{site.kind.value}|{site.program}|{site.procedure}|{site.label}"
    assert proto.shard_for_site(site, 5) == zlib.crc32(key.encode()) % 5


def test_shard_routing_ignores_opcode():
    a = Site(kind=SiteKind.LOAD, program="p", procedure="f", label="L", opcode="x")
    b = Site(kind=SiteKind.LOAD, program="p", procedure="f", label="L", opcode="y")
    assert proto.shard_for_site(a, 13) == proto.shard_for_site(b, 13)


def test_shard_routing_spreads_sites():
    sites = make_sites(200)
    owners = {proto.shard_for_site(site, 4) for site in sites}
    assert owners == {0, 1, 2, 3}


def test_check_batch_validation():
    assert proto.check_batch(proto.batch(0, [1], [2])) == (0, [1], [2], None)
    with pytest.raises(ProtocolError):
        proto.check_batch({"t": "batch", "seq": -1, "sids": [], "values": []})
    with pytest.raises(ProtocolError):
        proto.check_batch({"t": "batch", "seq": 0, "sids": [1], "values": []})
    with pytest.raises(ProtocolError):
        proto.check_batch({"t": "batch", "seq": 0, "sids": 3, "values": []})


def test_check_batch_rejects_non_int_elements():
    """Element types are enforced at the wire boundary, so a poisoned
    batch can never reach routing or a shard's fold loop."""
    with pytest.raises(ProtocolError):
        proto.check_batch({"t": "batch", "seq": 0, "sids": ["0"], "values": [1]})
    with pytest.raises(ProtocolError):
        proto.check_batch({"t": "batch", "seq": 0, "sids": [0], "values": ["boom"]})
    with pytest.raises(ProtocolError):
        proto.check_batch({"t": "batch", "seq": 0, "sids": [0], "values": [1.5]})
    with pytest.raises(ProtocolError):
        proto.check_batch({"t": "batch", "seq": 0, "sids": [0], "values": [None]})
    # JSON true/false decode to bool — an int subclass, still refused.
    with pytest.raises(ProtocolError):
        proto.check_batch({"t": "batch", "seq": 0, "sids": [True], "values": [1]})
