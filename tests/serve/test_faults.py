"""Fault injection: worker death, mid-stream disconnects, wire chaos.

Every test here asserts the same end state — merged profiles identical
to the offline fold of the same stream — because the service's whole
failure contract is "faults cost retries and latency, never data that
was acknowledged."
"""

import socket
import threading
import time
import urllib.error

import pytest

from repro.serve import protocol as proto

from tests.serve.harness import (
    DropFirstSend,
    DuplicateEverySend,
    ServeCluster,
    SwapAdjacentSends,
    assert_same_profile_state,
    make_sites,
    make_stream,
    offline_reference,
)


def _wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_kill_and_restore_loses_nothing_acked(tmp_path):
    """Everything flushed (= acked) survives a SIGKILL + restore."""
    events = make_stream(num_sites=8, num_events=1000, seed=5)
    with ServeCluster(
        shards=2,
        queue_size=16,
        checkpoint_interval=7,  # odd on purpose: WAL tail + snapshot both live
        snapshot_dir=str(tmp_path),
    ) as cluster:
        client = cluster.client("c1", stream="s")
        client.push_events(events[:500], batch_size=25)
        client.flush()
        cluster.kill_shard(0)
        cluster.restart_shard(0)
        client.push_events(events[500:], batch_size=25)
        client.flush()
        client.close()
        merged = cluster.merged_database()
    assert_same_profile_state(merged, offline_reference(events))


def test_kill_mid_ingest_recovers_via_retries(tmp_path):
    """Kill a shard while batches are in flight: the unacked window is
    re-delivered by the client, acked batches come back from disk, and
    the final state is exact."""
    events = make_stream(num_sites=8, num_events=1200, seed=6)
    with ServeCluster(
        shards=2,
        queue_size=8,
        checkpoint_interval=5,
        snapshot_dir=str(tmp_path),
    ) as cluster:
        cluster.set_shard_delay(0, 0.01)  # keep batches in flight at kill time
        failures = []

        def produce():
            try:
                client = cluster.client(
                    "c1", stream="s", retry_interval=0.1, timeout=30, window=8
                )
                client.push_events(events, batch_size=24)
                client.flush()
                client.close()
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append(error)

        producer = threading.Thread(target=produce)
        producer.start()
        assert _wait_for(
            lambda: cluster.server.counters.get("serve.batches", 0) >= 5
        ), "producer never got going"
        dropped = cluster.kill_shard(0)
        cluster.log(f"killed mid-ingest; {dropped} queued batches dropped")
        time.sleep(0.1)
        cluster.set_shard_delay(0, 0.0)
        cluster.restart_shard(0)
        producer.join(timeout=60)
        assert not producer.is_alive(), "producer wedged after shard kill"
        assert not failures, failures
        merged = cluster.merged_database()
        stats = cluster.http_json("/stats")
    assert_same_profile_state(merged, offline_reference(events))
    assert stats["counters"]["serve.shard_kills"] == 1
    assert stats["counters"]["serve.shard_restarts"] == 1


def test_disconnect_mid_batch_leaves_no_partial_fold():
    """A frame truncated by connection loss must apply zero events."""
    sites = make_sites(4)
    full_batches = [
        ([sites[0], sites[1], sites[0]], [1, 2, 1]),
        ([sites[2]], [7]),
    ]
    with ServeCluster(shards=2) as cluster:
        cluster.half_frame_disconnect(
            "ghost", full_batches, [sites[3], sites[0]], [99, 99]
        )
        assert _wait_for(
            lambda: cluster.server.counters.get("serve.events", 0) >= 4
        ), "complete batches never applied"
        time.sleep(0.2)  # give a partial fold every chance to appear
        merged = cluster.merged_database()
        stats = cluster.http_json("/stats")
    expected = offline_reference(
        [(site, value) for sites_, values in full_batches
         for site, value in zip(sites_, values)]
    )
    assert_same_profile_state(merged, expected)
    assert sites[3] not in merged  # the truncated batch's new site never appeared
    assert stats["counters"]["serve.events"] == 4


def test_dropped_frames_are_recovered_by_retry():
    events = make_stream(num_sites=6, num_events=300, seed=7)
    hook = DropFirstSend({1, 4})
    with ServeCluster(shards=2) as cluster:
        client = cluster.client(
            "c1", retry_interval=0.05, timeout=20, frame_hook=hook
        )
        client.push_events(events, batch_size=30)
        client.flush()
        client.close()
        merged = cluster.merged_database()
    assert hook.dropped == [1, 4]
    assert client.counters["retries"] >= 1
    assert_same_profile_state(merged, offline_reference(events))


def test_duplicated_frames_are_deduplicated():
    events = make_stream(num_sites=6, num_events=300, seed=8)
    hook = DuplicateEverySend()
    with ServeCluster(shards=2) as cluster:
        client = cluster.client("c1", timeout=20, frame_hook=hook)
        client.push_events(events, batch_size=30)
        client.flush()
        client.close()
        merged = cluster.merged_database()
        counters = cluster.http_json("/stats")["counters"]
    assert hook.duplicated == client.counters["batches"]
    # every second copy is either a full duplicate or a redundant retry
    assert (
        counters.get("serve.duplicate_batches", 0)
        + counters.get("serve.retried_batches", 0)
        >= 1
    )
    assert_same_profile_state(merged, offline_reference(events))


def test_reordered_frames_are_applied_in_order():
    events = make_stream(num_sites=6, num_events=300, seed=9)
    hook = SwapAdjacentSends()
    with ServeCluster(shards=2) as cluster:
        client = cluster.client(
            "c1", retry_interval=0.1, timeout=20, frame_hook=hook
        )
        client.push_events(events, batch_size=30)  # 10 batches: 5 swapped pairs
        client.flush()
        client.close()
        merged = cluster.merged_database()
        counters = cluster.http_json("/stats")["counters"]
    assert hook.swapped >= 4
    assert counters.get("serve.reordered_batches", 0) >= 1
    assert_same_profile_state(merged, offline_reference(events))


def test_client_reconnect_resumes_from_welcome():
    """Abort mid-stream, reconnect with the same identity, finish."""
    events = make_stream(num_sites=6, num_events=600, seed=10)
    with ServeCluster(shards=2) as cluster:
        client = cluster.client("c1", stream="s", timeout=20)
        client.push_events(events[:300], batch_size=30)
        client.flush()
        client.abort()  # hard drop, no goodbye
        client.connect()  # same object: unacked empty, welcome resyncs seq
        client.push_events(events[300:], batch_size=30)
        client.flush()
        client.close()
        merged = cluster.merged_database()
    assert_same_profile_state(merged, offline_reference(events))


def test_reconnect_resends_batches_lost_to_shard_kill(tmp_path):
    """A batch routed but killed out of a shard before journaling must
    stay above the welcome resume point, so a reconnecting client keeps
    and resends it (regression: it was dropped as durable and lost)."""
    events = make_stream(num_sites=8, num_events=600, seed=21)
    with ServeCluster(
        shards=2, checkpoint_interval=None, snapshot_dir=str(tmp_path)
    ) as cluster:
        # Retries effectively off: recovery may only come from the
        # reconnect handshake, which is exactly what is under test.
        client = cluster.client("c1", stream="s", timeout=30, retry_interval=30)
        client.push_events(events[:500], batch_size=25)
        client.flush()
        # Stall shard 1 so the final batch is routed (pending created,
        # sequence advanced) but never journaled there, then kill it.
        cluster.set_shard_delay(1, 30.0)
        client.push_events(events[500:], batch_size=100)  # one batch
        assert _wait_for(lambda: cluster.server.sessions["c1"].pending)
        cluster.kill_shard(1)
        client.abort()
        cluster.set_shard_delay(1, 0.0)
        cluster.restart_shard(1)
        client.connect()  # welcome.next must keep the lost batch buffered
        assert client.unacked >= 1
        client.flush()
        client.close()
        merged = cluster.merged_database()
    assert_same_profile_state(merged, offline_reference(events))


def test_malformed_batch_is_rejected_without_wedging_shards():
    """Non-int batch elements are refused at the wire boundary with an
    error frame; the shards never see them and healthy clients keep
    working afterwards."""
    events = make_stream(num_sites=6, num_events=200, seed=22)
    with ServeCluster(shards=2) as cluster:
        sock = socket.create_connection(("127.0.0.1", cluster.ingest_port), timeout=5)
        try:
            sock.sendall(proto.encode_frame(proto.hello("evil", "")))
            payload = proto.site_to_payload(make_sites(1)[0])
            sock.sendall(proto.encode_frame(proto.sites_frame(0, [payload])))
            sock.sendall(
                proto.encode_frame(
                    {"t": "batch", "seq": 0, "sids": [0], "values": ["boom"]}
                )
            )
            decoder = proto.FrameDecoder()
            sock.settimeout(10.0)
            error_seen = False
            while not error_seen:
                data = sock.recv(1 << 16)
                if not data:
                    break
                for message in decoder.feed(data):
                    if message.get("t") == "error":
                        error_seen = True
            assert error_seen
        finally:
            sock.close()
        cluster.push_events("c1", events)
        merged = cluster.merged_database()
    assert_same_profile_state(merged, offline_reference(events))


def test_bad_query_params_return_400():
    """Malformed ?top / ?kind values are client errors, not 500s."""
    with ServeCluster(shards=1) as cluster:
        for path in ("/profile?top=abc", "/profile?kind=bogus", "/inspect?kind=nope"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                cluster.http(path)
            assert excinfo.value.code == 400, path
