"""Fault injection: worker death, mid-stream disconnects, wire chaos.

Every test here asserts the same end state — merged profiles identical
to the offline fold of the same stream — because the service's whole
failure contract is "faults cost retries and latency, never data that
was acknowledged."
"""

import threading
import time

from tests.serve.harness import (
    DropFirstSend,
    DuplicateEverySend,
    ServeCluster,
    SwapAdjacentSends,
    assert_same_profile_state,
    make_sites,
    make_stream,
    offline_reference,
)


def _wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_kill_and_restore_loses_nothing_acked(tmp_path):
    """Everything flushed (= acked) survives a SIGKILL + restore."""
    events = make_stream(num_sites=8, num_events=1000, seed=5)
    with ServeCluster(
        shards=2,
        queue_size=16,
        checkpoint_interval=7,  # odd on purpose: WAL tail + snapshot both live
        snapshot_dir=str(tmp_path),
    ) as cluster:
        client = cluster.client("c1", stream="s")
        client.push_events(events[:500], batch_size=25)
        client.flush()
        cluster.kill_shard(0)
        cluster.restart_shard(0)
        client.push_events(events[500:], batch_size=25)
        client.flush()
        client.close()
        merged = cluster.merged_database()
    assert_same_profile_state(merged, offline_reference(events))


def test_kill_mid_ingest_recovers_via_retries(tmp_path):
    """Kill a shard while batches are in flight: the unacked window is
    re-delivered by the client, acked batches come back from disk, and
    the final state is exact."""
    events = make_stream(num_sites=8, num_events=1200, seed=6)
    with ServeCluster(
        shards=2,
        queue_size=8,
        checkpoint_interval=5,
        snapshot_dir=str(tmp_path),
    ) as cluster:
        cluster.set_shard_delay(0, 0.01)  # keep batches in flight at kill time
        failures = []

        def produce():
            try:
                client = cluster.client(
                    "c1", stream="s", retry_interval=0.1, timeout=30, window=8
                )
                client.push_events(events, batch_size=24)
                client.flush()
                client.close()
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append(error)

        producer = threading.Thread(target=produce)
        producer.start()
        assert _wait_for(
            lambda: cluster.server.counters.get("serve.batches", 0) >= 5
        ), "producer never got going"
        dropped = cluster.kill_shard(0)
        cluster.log(f"killed mid-ingest; {dropped} queued batches dropped")
        time.sleep(0.1)
        cluster.set_shard_delay(0, 0.0)
        cluster.restart_shard(0)
        producer.join(timeout=60)
        assert not producer.is_alive(), "producer wedged after shard kill"
        assert not failures, failures
        merged = cluster.merged_database()
        stats = cluster.http_json("/stats")
    assert_same_profile_state(merged, offline_reference(events))
    assert stats["counters"]["serve.shard_kills"] == 1
    assert stats["counters"]["serve.shard_restarts"] == 1


def test_disconnect_mid_batch_leaves_no_partial_fold():
    """A frame truncated by connection loss must apply zero events."""
    sites = make_sites(4)
    full_batches = [
        ([sites[0], sites[1], sites[0]], [1, 2, 1]),
        ([sites[2]], [7]),
    ]
    with ServeCluster(shards=2) as cluster:
        cluster.half_frame_disconnect(
            "ghost", full_batches, [sites[3], sites[0]], [99, 99]
        )
        assert _wait_for(
            lambda: cluster.server.counters.get("serve.events", 0) >= 4
        ), "complete batches never applied"
        time.sleep(0.2)  # give a partial fold every chance to appear
        merged = cluster.merged_database()
        stats = cluster.http_json("/stats")
    expected = offline_reference(
        [(site, value) for sites_, values in full_batches
         for site, value in zip(sites_, values)]
    )
    assert_same_profile_state(merged, expected)
    assert sites[3] not in merged  # the truncated batch's new site never appeared
    assert stats["counters"]["serve.events"] == 4


def test_dropped_frames_are_recovered_by_retry():
    events = make_stream(num_sites=6, num_events=300, seed=7)
    hook = DropFirstSend({1, 4})
    with ServeCluster(shards=2) as cluster:
        client = cluster.client(
            "c1", retry_interval=0.05, timeout=20, frame_hook=hook
        )
        client.push_events(events, batch_size=30)
        client.flush()
        client.close()
        merged = cluster.merged_database()
    assert hook.dropped == [1, 4]
    assert client.counters["retries"] >= 1
    assert_same_profile_state(merged, offline_reference(events))


def test_duplicated_frames_are_deduplicated():
    events = make_stream(num_sites=6, num_events=300, seed=8)
    hook = DuplicateEverySend()
    with ServeCluster(shards=2) as cluster:
        client = cluster.client("c1", timeout=20, frame_hook=hook)
        client.push_events(events, batch_size=30)
        client.flush()
        client.close()
        merged = cluster.merged_database()
        counters = cluster.http_json("/stats")["counters"]
    assert hook.duplicated == client.counters["batches"]
    # every second copy is either a full duplicate or a redundant retry
    assert (
        counters.get("serve.duplicate_batches", 0)
        + counters.get("serve.retried_batches", 0)
        >= 1
    )
    assert_same_profile_state(merged, offline_reference(events))


def test_reordered_frames_are_applied_in_order():
    events = make_stream(num_sites=6, num_events=300, seed=9)
    hook = SwapAdjacentSends()
    with ServeCluster(shards=2) as cluster:
        client = cluster.client(
            "c1", retry_interval=0.1, timeout=20, frame_hook=hook
        )
        client.push_events(events, batch_size=30)  # 10 batches: 5 swapped pairs
        client.flush()
        client.close()
        merged = cluster.merged_database()
        counters = cluster.http_json("/stats")["counters"]
    assert hook.swapped >= 4
    assert counters.get("serve.reordered_batches", 0) >= 1
    assert_same_profile_state(merged, offline_reference(events))


def test_client_reconnect_resumes_from_welcome():
    """Abort mid-stream, reconnect with the same identity, finish."""
    events = make_stream(num_sites=6, num_events=600, seed=10)
    with ServeCluster(shards=2) as cluster:
        client = cluster.client("c1", stream="s", timeout=20)
        client.push_events(events[:300], batch_size=30)
        client.flush()
        client.abort()  # hard drop, no goodbye
        client.connect()  # same object: unacked empty, welcome resyncs seq
        client.push_events(events[300:], batch_size=30)
        client.flush()
        client.close()
        merged = cluster.merged_database()
    assert_same_profile_state(merged, offline_reference(events))
