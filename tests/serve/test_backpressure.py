"""Backpressure: a slow shard must throttle producers, not eat memory."""

import socket
import threading
import time

import pytest

from repro.serve.client import ClientError, ServeClient

from tests.serve.harness import (
    ServeCluster,
    assert_same_profile_state,
    make_stream,
    offline_reference,
)


def test_slow_shard_propagates_flow_control():
    """Saturating one shard pauses producers via flow frames; every
    queue stays bounded and the depth gauge is observable throughout."""
    events = make_stream(num_sites=8, num_events=1400, seed=12)
    queue_size = 8
    with ServeCluster(shards=2, queue_size=queue_size) as cluster:
        cluster.set_shard_delay(0, 0.008)
        client = cluster.client(
            "c1", stream="s", window=16, timeout=60, retry_interval=30
        )
        samples = []
        unacked_samples = []
        stop_sampling = threading.Event()

        def sample():
            while not stop_sampling.is_set():
                samples.append(cluster.queue_depth())
                unacked_samples.append(client.unacked)
                time.sleep(0.002)

        sampler = threading.Thread(target=sample)
        sampler.start()
        try:
            client.push_events(events, batch_size=10)
            # While still saturated, the gauge must be live over HTTP too.
            stats = cluster.http_json("/stats")
            assert "serve.queue_depth" in stats["gauges"]
            client.flush()
        finally:
            stop_sampling.set()
            sampler.join()
        cluster.set_shard_delay(0, 0.0)
        client.close()
        merged = cluster.merged_database()
        counters = dict(cluster.server.counters)
    # The queue saturated (watermark crossed) but never exceeded its bound.
    assert max(samples) >= int(queue_size * 0.75)
    assert max(samples) <= queue_size
    # Flow control reached the client and actually paused it.
    assert counters.get("serve.flow_pauses", 0) >= 1
    assert client.counters["flow_pauses"] >= 1
    # Bounded client memory: the unacked window never grew past its cap.
    assert max(unacked_samples) <= 16
    # And none of this throttling cost any data.
    assert_same_profile_state(merged, offline_reference(events))


def test_client_times_out_without_acks_then_recovers():
    """A dead shard stalls acks: the client retries, then raises after
    its timeout; restarting the shard lets the same batch complete."""
    events = make_stream(num_sites=6, num_events=40, seed=13)
    with ServeCluster(shards=2, queue_size=16) as cluster:
        cluster.kill_shard(0)  # acks now impossible: one shard never reports
        client = cluster.client(
            "c1", stream="s", timeout=0.8, retry_interval=0.2
        )
        client.push_events(events, batch_size=40)  # single batch
        with pytest.raises(ClientError, match="no progress"):
            client.flush()
        assert client.counters["retries"] >= 1
        assert client.unacked == 1
        cluster.restart_shard(0)  # drains the queued sub-batch
        client.flush()  # now completes inside the same timeout budget
        assert client.unacked == 0
        client.close()
        merged = cluster.merged_database()
    assert_same_profile_state(merged, offline_reference(events))


def test_flapping_server_bounds_reconnects_by_timeout():
    """A server that accepts and immediately drops connections must
    yield a ClientError within the client's timeout — reconnection is
    iterative against one deadline, not recursive with a fresh one."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port = listener.getsockname()[1]
    stop = threading.Event()

    def flap():
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            conn.close()

    flapper = threading.Thread(target=flap, daemon=True)
    flapper.start()
    client = ServeClient("127.0.0.1", port, "c1", timeout=1.0)
    start = time.monotonic()
    try:
        with pytest.raises(ClientError):
            client.connect()
    finally:
        stop.set()
        listener.close()
        flapper.join(timeout=5)
    assert time.monotonic() - start < 10.0
