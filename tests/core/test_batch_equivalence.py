"""Batched recording must be indistinguishable from per-event recording.

The batched fast path (``TNVTable.record_many``,
``SiteProfile.record_many``, ``ProfileDatabase.record_batch``, and the
buffered :class:`~repro.isa.instrument.ValueProfiler`) exists purely
for speed: every observable result — resident entries, clear counts,
stream statistics, serialized JSON — must match the per-event path
bit for bit, for every TNV configuration and every way of splitting a
stream into batches.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import ValueStreamStats
from repro.core.profile import ProfileDatabase, SiteProfile, TNVConfig
from repro.core.tnv import TNVTable
from repro.core.sites import load_site
from repro.workloads.harness import profile_workload

SITE = load_site("prog", "main", 1)

#: TNV shapes covering the paper default, clearing disabled, a tiny
#: interval (clears mid-batch), and a degenerate steady part.
CONFIGS = [
    dict(capacity=10, steady=5, clear_interval=2000),
    dict(capacity=10, steady=5, clear_interval=None),
    dict(capacity=4, steady=2, clear_interval=7),
    dict(capacity=3, steady=0, clear_interval=5),
    dict(capacity=1, steady=0, clear_interval=3),
]

values_strategy = st.lists(st.integers(min_value=-6, max_value=6), max_size=300)
splits_strategy = st.lists(st.integers(min_value=0, max_value=300), max_size=8)


def chunks(values, splits):
    """Split ``values`` at the (sorted, clamped) ``splits`` offsets."""
    bounds = sorted({min(s, len(values)) for s in splits} | {0, len(values)})
    return [values[a:b] for a, b in zip(bounds, bounds[1:])]


def tnv_state(table):
    return (
        dict(table._entries),
        table.total,
        table.clears,
        table._since_clear,
    )


def stats_state(stats):
    return {slot: getattr(stats, slot) for slot in ValueStreamStats.__slots__}


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: str(c["clear_interval"]))
@settings(max_examples=60, deadline=None)
@given(values=values_strategy, splits=splits_strategy)
def test_tnv_record_many_matches_per_event(config, values, splits):
    per_event = TNVTable(**config)
    for value in values:
        per_event.record(value)
    batched = TNVTable(**config)
    for chunk in chunks(values, splits):
        batched.record_many(chunk)
    assert tnv_state(batched) == tnv_state(per_event)
    assert batched.to_dict() == per_event.to_dict()


@settings(max_examples=100, deadline=None)
@given(values=values_strategy, splits=splits_strategy)
def test_stream_stats_record_many_matches_per_event(values, splits):
    per_event = ValueStreamStats()
    for value in values:
        per_event.record(value)
    batched = ValueStreamStats()
    for chunk in chunks(values, splits):
        batched.record_many(chunk)
    assert stats_state(batched) == stats_state(per_event)
    assert batched.lvp() == per_event.lvp()
    one_shot = ValueStreamStats()
    if values:
        one_shot.record_many(values)
    assert stats_state(one_shot) == stats_state(per_event)


@pytest.mark.parametrize("exact", [True, False])
@pytest.mark.parametrize("config", CONFIGS[:3], ids=lambda c: str(c["clear_interval"]))
@settings(max_examples=40, deadline=None)
@given(values=values_strategy, splits=splits_strategy)
def test_site_profile_record_many_matches_per_event(config, exact, values, splits):
    tnv_config = TNVConfig(**config)
    per_event = SiteProfile(SITE, tnv_config, exact=exact)
    for value in values:
        per_event.record(value)
    batched = SiteProfile(SITE, tnv_config, exact=exact)
    for chunk in chunks(values, splits):
        batched.record_many(chunk)
    assert batched.metrics() == per_event.metrics()
    assert batched.lvp() == per_event.lvp()
    assert tnv_state(batched.tnv) == tnv_state(per_event.tnv)


def test_record_batch_matches_record_json_identical():
    rng = random.Random(1234)
    sites = [load_site("prog", "main", pc) for pc in range(5)]
    events = [(rng.choice(sites), rng.randrange(8)) for _ in range(4000)]

    per_event = ProfileDatabase(config=TNVConfig(capacity=4, steady=2, clear_interval=50))
    for site, value in events:
        per_event.record(site, value)

    batched = ProfileDatabase(config=TNVConfig(capacity=4, steady=2, clear_interval=50))
    runs = {}
    for site, value in events:
        runs.setdefault(site, []).append(value)
        if len(runs[site]) >= rng.randrange(1, 40):
            batched.record_batch(site, runs.pop(site))
    for site, run in runs.items():
        batched.record_batch(site, run)

    assert batched.to_json() == per_event.to_json()


def test_record_batch_roundtrips_through_json():
    database = ProfileDatabase(config=TNVConfig(capacity=4, steady=2, clear_interval=9))
    database.record_batch(SITE, list(range(4)) * 8)
    payload = json.loads(database.to_json())
    clone = ProfileDatabase.from_json(database.to_json())
    assert clone.to_json() == database.to_json()
    assert payload is not None


class TestBufferedProfilerEquivalence:
    """Buffered simulation runs must produce byte-identical profiles."""

    @pytest.mark.parametrize("workload,scale", [("compress", 0.1), ("go", 0.05)])
    def test_full_profiling(self, workload, scale):
        plain = profile_workload(workload, scale=scale, buffered=False)
        buffered = profile_workload(workload, scale=scale, buffered=True)
        assert buffered.database.to_json() == plain.database.to_json()

    def test_sampled_profiling_convergent_policy(self):
        from repro.core.sampling import ConvergentSampling

        plain = profile_workload(
            "li", scale=0.1, policy=ConvergentSampling(), buffered=False
        )
        buffered = profile_workload(
            "li", scale=0.1, policy=ConvergentSampling(), buffered=True
        )
        assert buffered.database.to_json() == plain.database.to_json()
        assert buffered.sampler.seen() == plain.sampler.seen()
        assert buffered.sampler.profiled() == plain.sampler.profiled()
        assert buffered.sampler.overhead() == plain.sampler.overhead()

    def test_random_policy_defaults_to_unbuffered(self):
        """RandomSampling shares one RNG across sites, so the harness
        must keep it on the per-event path by default."""
        from repro.core.sampling import RandomSampling

        assert RandomSampling(rate=0.5, seed=3).site_local is False
        a = profile_workload("compress", scale=0.1, policy=RandomSampling(rate=0.5, seed=3))
        b = profile_workload("compress", scale=0.1, policy=RandomSampling(rate=0.5, seed=3))
        assert a.database.to_json() == b.database.to_json()
