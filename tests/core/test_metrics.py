"""Tests for the metric definitions (LVP, Inv-Top, Diff, %Zeros)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    SiteMetrics,
    ValueStreamStats,
    aggregate_metrics,
    is_zero,
    mean_unweighted,
    weighted_mean,
)


class TestValueStreamStats:
    def test_empty(self):
        stats = ValueStreamStats()
        assert stats.total == 0
        assert stats.invariance(1) == 0.0
        assert stats.lvp() == 0.0
        assert stats.pct_zeros() == 0.0
        assert stats.distinct == 0

    def test_constant_stream(self):
        stats = ValueStreamStats()
        stats.record_many([5] * 10)
        assert stats.invariance(1) == 1.0
        assert stats.lvp() == 1.0
        assert stats.distinct == 1

    def test_lvp_excludes_first_execution(self):
        stats = ValueStreamStats()
        stats.record_many([1, 1])
        assert stats.lvp() == 1.0  # 1 hit / (2 - 1)

    def test_lvp_alternating(self):
        stats = ValueStreamStats()
        stats.record_many([1, 2, 1, 2, 1])
        assert stats.lvp() == 0.0

    def test_lvp_single_execution_is_zero(self):
        stats = ValueStreamStats()
        stats.record(9)
        assert stats.lvp() == 0.0

    def test_invariance_top1_majority(self):
        stats = ValueStreamStats()
        stats.record_many([3, 3, 3, 1])
        assert stats.invariance(1) == pytest.approx(0.75)

    def test_invariance_topk_covers_everything(self):
        stats = ValueStreamStats()
        stats.record_many([1, 2, 3, 4])
        assert stats.invariance(4) == 1.0

    def test_pct_zeros(self):
        stats = ValueStreamStats()
        stats.record_many([0, 0, 5, 5])
        assert stats.pct_zeros() == pytest.approx(0.5)

    def test_diff_counts_distinct(self):
        stats = ValueStreamStats()
        stats.record_many([1, 1, 2, 3, 3, 3])
        assert stats.distinct == 3

    def test_top_deterministic_ties(self):
        stats = ValueStreamStats()
        stats.record_many([4, 2])
        assert stats.top(2) == stats.top(2)

    def test_metrics_snapshot(self):
        stats = ValueStreamStats()
        stats.record_many([0, 0, 0, 7])
        metrics = stats.metrics()
        assert metrics.executions == 4
        assert metrics.inv_top1 == pytest.approx(0.75)
        assert metrics.pct_zeros == pytest.approx(0.75)
        assert metrics.distinct == 2

    def test_merge(self):
        a, b = ValueStreamStats(), ValueStreamStats()
        a.record_many([1, 1])
        b.record_many([1, 2])
        a.merge(b)
        assert a.total == 4
        assert a.histogram[1] == 3
        assert a.distinct == 2

    def test_lvp_lower_bounds_invariance_relation(self):
        # A stream sorted by value maximizes LVP for its histogram;
        # sanity: sorted constant-heavy stream has LVP >= inv_top1 - 1/n.
        stats = ValueStreamStats()
        stats.record_many(sorted([7] * 90 + list(range(10))))
        assert stats.lvp() >= stats.invariance(1) - 0.05


class TestIsZero:
    def test_int_zero(self):
        assert is_zero(0)

    def test_float_zero(self):
        assert is_zero(0.0)

    def test_nonzero(self):
        assert not is_zero(3)

    def test_non_numeric(self):
        assert not is_zero("zero")


class TestAggregation:
    def _metrics(self, executions, inv):
        return SiteMetrics(
            executions=executions,
            lvp=inv,
            inv_top1=inv,
            inv_top_n=inv,
            distinct=1,
            pct_zeros=0.0,
        )

    def test_weighted_mean_empty(self):
        assert weighted_mean([]) == 0.0

    def test_weighted_mean_basic(self):
        assert weighted_mean([(1.0, 1), (0.0, 3)]) == pytest.approx(0.25)

    def test_aggregate_weights_by_executions(self):
        rows = [self._metrics(90, 1.0), self._metrics(10, 0.0)]
        agg = aggregate_metrics(rows)
        assert agg.inv_top1 == pytest.approx(0.9)
        assert agg.executions == 100

    def test_aggregate_empty(self):
        agg = aggregate_metrics([])
        assert agg.executions == 0
        assert agg.inv_top1 == 0.0

    def test_unweighted_mean_differs_from_weighted(self):
        rows = [self._metrics(90, 1.0), self._metrics(10, 0.0)]
        assert mean_unweighted(rows).inv_top1 == pytest.approx(0.5)

    def test_as_percentages(self):
        row = self._metrics(10, 0.5)
        rendered = row.as_percentages()
        assert rendered["Inv-Top1"] == pytest.approx(50.0)
        assert rendered["executions"] == 10


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=-5, max_value=5), min_size=1, max_size=300))
def test_property_invariance_bounds(values):
    stats = ValueStreamStats()
    stats.record_many(values)
    inv1 = stats.invariance(1)
    assert 0.0 < inv1 <= 1.0
    assert inv1 >= 1.0 / len(values)
    # top-k coverage is monotone and reaches 1 at k = distinct
    assert stats.invariance(stats.distinct) == pytest.approx(1.0)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=300))
def test_property_lvp_counts_adjacent_pairs(values):
    stats = ValueStreamStats()
    stats.record_many(values)
    expected_hits = sum(1 for a, b in zip(values, values[1:]) if a == b)
    assert stats.lvp() == pytest.approx(expected_hits / (len(values) - 1))


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=-3, max_value=3), min_size=1, max_size=200))
def test_property_zero_fraction(values):
    stats = ValueStreamStats()
    stats.record_many(values)
    assert stats.pct_zeros() == pytest.approx(values.count(0) / len(values))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100),
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100),
)
def test_property_merge_equals_concatenation_for_histogram(a_values, b_values):
    merged = ValueStreamStats()
    merged.record_many(a_values)
    other = ValueStreamStats()
    other.record_many(b_values)
    merged.merge(other)

    reference = ValueStreamStats()
    reference.record_many(a_values + b_values)
    assert merged.histogram == reference.histogram
    assert merged.total == reference.total
    assert merged.invariance(1) == pytest.approx(reference.invariance(1))
