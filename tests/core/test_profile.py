"""Tests for SiteProfile and ProfileDatabase."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import ProfileDatabase, SiteProfile, TNVConfig
from repro.core.sites import SiteKind, instruction_site, load_site, memory_site
from repro.errors import ProfileError

SITE_A = load_site("prog", "main", 1)
SITE_B = load_site("prog", "main", 2)
SITE_C = instruction_site("prog", "helper", 3, "add")


def make_profile(values, exact=True):
    profile = SiteProfile(SITE_A, TNVConfig(), exact=exact)
    for value in values:
        profile.record(value)
    return profile


class TestSiteProfile:
    def test_metrics_prefer_exact(self):
        profile = make_profile([1, 1, 2])
        assert profile.metrics().inv_top1 == pytest.approx(2 / 3)

    def test_tnv_only_mode(self):
        profile = make_profile([1, 1, 2], exact=False)
        assert profile.exact is None
        metrics = profile.metrics()
        assert metrics.inv_top1 == pytest.approx(2 / 3)
        assert metrics.executions == 3

    def test_lvp_tracked_without_exact(self):
        profile = make_profile([5, 5, 5, 1], exact=False)
        assert profile.lvp() == pytest.approx(2 / 3)

    def test_pct_zeros(self):
        profile = make_profile([0, 1, 0, 1])
        assert profile.pct_zeros() == pytest.approx(0.5)

    def test_merge_requires_same_site(self):
        a = SiteProfile(SITE_A, TNVConfig())
        b = SiteProfile(SITE_B, TNVConfig())
        with pytest.raises(ProfileError):
            a.merge(b)

    def test_merge_combines(self):
        a = make_profile([1, 1])
        b = make_profile([2])
        a.merge(b)
        assert a.executions == 3
        assert a.metrics().distinct == 2

    def test_merge_counts_lvp_hit_across_boundary(self):
        """Regression: merging [..., 7] with [7, ...] must count the
        boundary repeat, exactly as the concatenated stream would."""
        for left, right in [
            ([1, 7], [7, 2]),
            ([7], [7]),
            ([1, 2], [3, 4]),
            ([7, 7], [7, 7]),
        ]:
            merged = make_profile(left)
            merged.merge(make_profile(right))
            reference = make_profile(left + right)
            assert merged.lvp() == pytest.approx(reference.lvp()), (left, right)

    def test_merge_boundary_lvp_without_exact(self):
        merged = make_profile([5, 5], exact=False)
        merged.merge(make_profile([5, 5], exact=False))
        reference = make_profile([5, 5, 5, 5], exact=False)
        assert merged.lvp() == pytest.approx(reference.lvp())

    def test_merge_with_empty_side_keeps_lvp(self):
        merged = make_profile([3, 3, 4])
        merged.merge(SiteProfile(SITE_A, TNVConfig()))
        assert merged.lvp() == pytest.approx(make_profile([3, 3, 4]).lvp())
        empty = SiteProfile(SITE_A, TNVConfig())
        empty.merge(make_profile([3, 3, 4]))
        assert empty.lvp() == pytest.approx(make_profile([3, 3, 4]).lvp())

    def test_tnv_metrics_report_estimates(self):
        profile = make_profile([1] * 10)
        assert profile.tnv_metrics().inv_top1 == 1.0


class TestProfileDatabase:
    def test_record_creates_sites(self):
        db = ProfileDatabase()
        db.record(SITE_A, 1)
        db.record(SITE_B, 2)
        assert len(db) == 2
        assert SITE_A in db

    def test_profile_for_unknown_raises(self):
        with pytest.raises(ProfileError):
            ProfileDatabase().profile_for(SITE_A)

    def test_sites_filter_by_kind(self):
        db = ProfileDatabase()
        db.record(SITE_A, 1)
        db.record(SITE_C, 2)
        assert db.sites(SiteKind.LOAD) == [SITE_A]
        assert db.sites(SiteKind.INSTRUCTION) == [SITE_C]
        assert len(db.sites()) == 2

    def test_profiles_predicate(self):
        db = ProfileDatabase()
        db.record(SITE_A, 1)
        db.record(SITE_B, 1)
        main_only = db.profiles(predicate=lambda s: s.label == "1")
        assert [p.site for p in main_only] == [SITE_A]

    def test_total_executions(self):
        db = ProfileDatabase()
        for _ in range(5):
            db.record(SITE_A, 1)
        db.record(SITE_C, 1)
        assert db.total_executions() == 6
        assert db.total_executions(SiteKind.LOAD) == 5

    def test_metrics_by_site_sorted_hottest_first(self):
        db = ProfileDatabase()
        db.record(SITE_B, 1)
        for _ in range(3):
            db.record(SITE_A, 1)
        rows = db.metrics_by_site(SiteKind.LOAD)
        assert rows[0][0] == SITE_A

    def test_summary_weights_by_executions(self):
        db = ProfileDatabase()
        for _ in range(90):
            db.record(SITE_A, 7)  # fully invariant
        for value in range(10):
            db.record(SITE_B, value)  # fully variant
        summary = db.summary(SiteKind.LOAD)
        assert summary.inv_top1 == pytest.approx(0.9 * 1.0 + 0.1 * 0.1)

    def test_summary_by_procedure(self):
        db = ProfileDatabase()
        db.record(SITE_A, 1)
        db.record(SITE_C, 2)
        grouped = db.summary_by_procedure()
        assert set(grouped) == {"main", "helper"}

    def test_summary_by_opcode(self):
        db = ProfileDatabase()
        db.record(SITE_C, 2)
        assert "add" in db.summary_by_opcode()

    def test_merge_databases(self):
        a, b = ProfileDatabase(), ProfileDatabase()
        a.record(SITE_A, 1)
        b.record(SITE_A, 1)
        b.record(SITE_B, 2)
        a.merge(b)
        assert a.profile_for(SITE_A).executions == 2
        assert SITE_B in a

    def test_iteration(self):
        db = ProfileDatabase()
        db.record(SITE_A, 1)
        assert [p.site for p in db] == [SITE_A]


class TestSerialization:
    def test_roundtrip_preserves_headline_numbers(self):
        db = ProfileDatabase(name="run1")
        for value in [1, 1, 1, 0, 2]:
            db.record(SITE_A, value)
        for value in [4, 4]:
            db.record(memory_site("prog", 8), value)
        clone = ProfileDatabase.from_json(db.to_json())
        assert clone.name == "run1"
        assert len(clone) == 2
        original = db.profile_for(SITE_A)
        restored = clone.profile_for(SITE_A)
        assert restored.executions == original.executions
        assert restored.lvp() == pytest.approx(original.lvp())
        assert restored.pct_zeros() == pytest.approx(original.pct_zeros())
        assert restored.tnv.top_value() == original.tnv.top_value()

    def test_restored_database_is_tnv_only(self):
        db = ProfileDatabase()
        db.record(SITE_A, 1)
        clone = ProfileDatabase.from_json(db.to_json())
        assert clone.profile_for(SITE_A).exact is None

    def test_config_roundtrip(self):
        db = ProfileDatabase(config=TNVConfig(capacity=6, steady=2, clear_interval=77))
        db.record(SITE_A, 1)
        clone = ProfileDatabase.from_json(db.to_json())
        assert clone.config.capacity == 6
        assert clone.config.clear_interval == 77


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=200))
def test_property_database_summary_matches_single_site_metrics(values):
    db = ProfileDatabase()
    for value in values:
        db.record(SITE_A, value)
    summary = db.summary(SiteKind.LOAD)
    direct = db.profile_for(SITE_A).metrics()
    assert summary.inv_top1 == pytest.approx(direct.inv_top1)
    assert summary.executions == direct.executions
