"""Tests for profile-site identity."""

from repro.core.sites import (
    Site,
    SiteKind,
    instruction_site,
    load_site,
    memory_site,
    parameter_site,
    python_site,
)


class TestSiteIdentity:
    def test_equal_sites_hash_equal(self):
        a = instruction_site("p", "main", 4, "add")
        b = instruction_site("p", "main", 4, "add")
        assert a == b
        assert hash(a) == hash(b)

    def test_opcode_not_part_of_identity(self):
        # Two descriptions of the same pc compare equal even if opcode
        # metadata differs (identity is where, not what).
        a = instruction_site("p", "main", 4, "add")
        b = instruction_site("p", "main", 4, "sub")
        assert a == b

    def test_different_pc_different_site(self):
        assert instruction_site("p", "main", 4, "add") != instruction_site("p", "main", 5, "add")

    def test_kind_distinguishes(self):
        load = load_site("p", "main", 4)
        insn = instruction_site("p", "main", 4, "ld")
        assert load != insn

    def test_sites_are_sortable(self):
        sites = [memory_site("p", 2), memory_site("p", 1), load_site("p", "m", 0)]
        assert sorted(sites)  # no TypeError

    def test_usable_as_dict_key(self):
        d = {parameter_site("p", "f", 0): 1}
        assert d[parameter_site("p", "f", 0)] == 1


class TestConstructors:
    def test_instruction_site_fields(self):
        site = instruction_site("prog", "proc", 12, "add")
        assert site.kind is SiteKind.INSTRUCTION
        assert site.label == "12"
        assert site.opcode == "add"

    def test_load_site_kind(self):
        assert load_site("p", "f", 3).kind is SiteKind.LOAD

    def test_memory_site_hex_label(self):
        assert memory_site("p", 255).label == "0xff"

    def test_parameter_site_label(self):
        assert parameter_site("p", "f", 2).label == "arg2"

    def test_python_site(self):
        site = python_site("mod", "func", "x")
        assert site.kind is SiteKind.PYTHON
        assert site.procedure == "func"


class TestNaming:
    def test_qualified_name(self):
        site = instruction_site("prog", "main", 7, "ld")
        assert site.qualified_name() == "prog:main+7"

    def test_qualified_name_without_procedure(self):
        site = memory_site("prog", 16)
        assert site.qualified_name() == "prog+0x10"

    def test_str_includes_kind(self):
        assert "load" in str(load_site("p", "f", 1))

    def test_kind_str(self):
        assert str(SiteKind.MEMORY) == "memory"
