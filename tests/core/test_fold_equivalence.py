"""The columnar fold path must be indistinguishable from per-event recording.

:mod:`repro.core.fold` reduces a site's value run once — grouped
``(value, count)`` chunks split at clearing boundaries plus the
order-sensitive scalars — and the grouped fast paths
(``TNVTable.record_grouped``/``record_run``, ``SiteProfile.record_fold``
and friends) consume that reduction.  Every observable result must match
the per-event path bit for bit: resident TNV entries *and* their dict
order, clear positions, health telemetry, LVP/zero/first/last scalars,
exact histograms, serialized JSON.  Both kernels (pure Python and
numpy, when installed) must produce identical folds.
"""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fold as foldmod
from repro.core.fold import fold_from_payload, fold_to_payload, fold_values
from repro.core.metrics import ValueStreamStats
from repro.core.profile import ProfileDatabase, SiteProfile, TNVConfig
from repro.core.sites import load_site
from repro.core.tnv import TNVTable
from repro.errors import ProfileError

SITE = load_site("prog", "main", 1)

#: TNV shapes covering the paper default, clearing disabled, a tiny
#: interval (clears mid-run), and a degenerate steady part.
CONFIGS = [
    dict(capacity=10, steady=5, clear_interval=2000),
    dict(capacity=10, steady=5, clear_interval=None),
    dict(capacity=4, steady=2, clear_interval=7),
    dict(capacity=3, steady=0, clear_interval=5),
    dict(capacity=1, steady=0, clear_interval=3),
]

values_strategy = st.lists(st.integers(min_value=-6, max_value=6), max_size=300)
runs_strategy = st.lists(
    st.tuples(st.integers(min_value=-6, max_value=6), st.integers(min_value=1, max_value=20)),
    max_size=40,
)


def tnv_full_state(table: TNVTable):
    """Every bit of TNV state, health telemetry included; ``_entries``
    as an item list so dict insertion order is part of the comparison."""
    return (
        list(table._entries.items()),
        table.total,
        table.clears,
        table._since_clear,
        table.evictions,
        table.promotions,
        table.turnover,
        table.last_turnover,
        table.saturated_clears,
        table._steady_values,
        table._size_after_clear,
    )


def stats_state(stats: ValueStreamStats):
    return {slot: getattr(stats, slot) for slot in ValueStreamStats.__slots__}


def profile_state(profile: SiteProfile):
    state = {
        "tnv": tnv_full_state(profile.tnv),
        "metrics": profile.metrics(),
        "tnv_metrics": profile.tnv_metrics(),
        "lvp": profile.lvp(),
        "first": (profile._has_first, profile._first),
        "last": (profile._has_last, profile._last),
    }
    if profile.exact is not None:
        state["exact"] = stats_state(profile.exact)
    return state


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: str(c["clear_interval"]))
@settings(max_examples=60, deadline=None)
@given(values=values_strategy)
def test_fold_values_matches_per_event_profile(config, values):
    per_event = SiteProfile(SITE, TNVConfig(**config))
    for value in values:
        per_event.record(value)
    folded = SiteProfile(SITE, TNVConfig(**config))
    if values:
        folded.record_fold(fold_values(values, config["clear_interval"]))
    assert profile_state(folded) == profile_state(per_event)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: str(c["clear_interval"]))
@settings(max_examples=40, deadline=None)
@given(head=values_strategy, tail=values_strategy)
def test_fold_splices_onto_nonempty_profile(config, head, tail):
    """A fold split for the table's mid-stream ``since_clear`` position
    must splice on exactly — boundary LVP hit and clear phase included."""
    per_event = SiteProfile(SITE, TNVConfig(**config))
    for value in head + tail:
        per_event.record(value)
    folded = SiteProfile(SITE, TNVConfig(**config))
    for value in head:
        folded.record(value)
    if tail:
        folded.record_fold(
            fold_values(tail, config["clear_interval"], folded.tnv._since_clear)
        )
    assert profile_state(folded) == profile_state(per_event)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: str(c["clear_interval"]))
@settings(max_examples=60, deadline=None)
@given(values=values_strategy)
def test_tnv_health_counters_match_per_event(config, values):
    per_event = TNVTable(**config)
    for value in values:
        per_event.record(value)
    batched = TNVTable(**config)
    batched.record_many(values)
    assert tnv_full_state(batched) == tnv_full_state(per_event)
    assert batched.health() == per_event.health()
    assert batched.to_dict() == per_event.to_dict()


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: str(c["clear_interval"]))
@settings(max_examples=40, deadline=None)
@given(runs=runs_strategy)
def test_record_run_matches_expanded_stream(config, runs):
    expanded = [value for value, count in runs for _ in range(count)]
    per_event = SiteProfile(SITE, TNVConfig(**config))
    for value in expanded:
        per_event.record(value)
    rle = SiteProfile(SITE, TNVConfig(**config))
    for value, count in runs:
        rle.record_run(value, count)
    assert profile_state(rle) == profile_state(per_event)
    grouped = SiteProfile(SITE, TNVConfig(**config))
    grouped.record_grouped(runs)
    assert profile_state(grouped) == profile_state(per_event)


@settings(max_examples=40, deadline=None)
@given(runs=runs_strategy)
def test_stream_stats_record_run_matches_expanded_stream(runs):
    expanded = [value for value, count in runs for _ in range(count)]
    per_event = ValueStreamStats()
    for value in expanded:
        per_event.record(value)
    rle = ValueStreamStats()
    rle.record_grouped(runs)
    assert stats_state(rle) == stats_state(per_event)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: str(c["clear_interval"]))
@settings(max_examples=40, deadline=None)
@given(values=values_strategy)
def test_kernels_produce_identical_folds(config, values):
    """The ``array('q')`` column (numpy kernel when installed) and the
    plain-list run (pure-Python kernel) must fold identically — chunk
    maps in the same order with the same Python-int values."""
    interval = config["clear_interval"]
    from_list = fold_values(values, interval)
    from_column = fold_values(array("q", values), interval)
    assert from_column.n == from_list.n
    assert from_column.first == from_list.first
    assert from_column.last == from_list.last
    assert from_column.lvp_hits == from_list.lvp_hits
    assert from_column.zeros == from_list.zeros
    assert list(from_column.counts.items()) == list(from_list.counts.items())
    assert [
        (list(counts.items()), n) for counts, n in from_column.chunks
    ] == [(list(counts.items()), n) for counts, n in from_list.chunks]
    for value in from_column.counts:
        assert type(value) is int


@settings(max_examples=40, deadline=None)
@given(values=values_strategy)
def test_fold_payload_roundtrip(values):
    fold = fold_values(values, 7)
    clone = fold_from_payload(fold_to_payload(fold))
    assert clone.n == fold.n
    assert clone.first == fold.first
    assert clone.last == fold.last
    assert clone.lvp_hits == fold.lvp_hits
    assert clone.zeros == fold.zeros
    assert list(clone.counts.items()) == list(fold.counts.items())
    assert [(list(c.items()), n) for c, n in clone.chunks] == [
        (list(c.items()), n) for c, n in fold.chunks
    ]
    assert (clone.interval, clone.since) == (fold.interval, fold.since)


class TestGuards:
    def test_grouped_record_must_not_cross_clear_boundary(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=10)
        table.record_many([1] * 7)
        with pytest.raises(ProfileError):
            table.record_grouped({1: 4}, 4)
        # Landing exactly on the boundary is fine and fires the clear.
        table.record_grouped({1: 3}, 3)
        assert table.clears == 1
        assert table._since_clear == 0

    def test_fold_for_wrong_table_phase_rejected(self):
        profile = SiteProfile(SITE, TNVConfig(capacity=4, steady=2, clear_interval=10))
        with pytest.raises(ProfileError):
            profile.record_fold(fold_values([1, 2, 3], 99))
        profile.record(5)
        with pytest.raises(ProfileError):
            profile.record_fold(fold_values([1, 2, 3], 10))  # since=0, table at 1

    def test_forced_numpy_mode_requires_numpy_compatible_input(self):
        if not foldmod.have_numpy():
            pytest.skip("numpy not installed")
        before = foldmod.fold_mode()
        foldmod.set_fold_mode(foldmod.FOLD_NUMPY)
        try:
            with pytest.raises(ProfileError):
                fold_values(["a", "b"], None)
        finally:
            foldmod.set_fold_mode(before)

    def test_set_fold_mode_rejects_unknown_mode(self):
        with pytest.raises(ProfileError):
            foldmod.set_fold_mode("vectorized")


class TestDatabaseFold:
    def test_record_fold_matches_record_batch(self):
        import random

        rng = random.Random(99)
        sites = [load_site("prog", "main", pc) for pc in range(4)]
        config = TNVConfig(capacity=4, steady=2, clear_interval=50)
        runs = {site: [rng.randrange(8) for _ in range(rng.randrange(300))] for site in sites}

        batched = ProfileDatabase(config=config)
        folded = ProfileDatabase(config=config)
        for site, values in runs.items():
            batched.record_batch(site, values)
            folded.record_fold(site, fold_values(values, config.clear_interval))
        assert folded.to_json() == batched.to_json()
        for site in sites:
            if runs[site]:
                assert stats_state(folded.profile_for(site).exact) == stats_state(
                    batched.profile_for(site).exact
                )
