"""Tests for sampling policies and the sampling profiler."""

import pytest

from repro.core.convergence import ConvergenceConfig
from repro.core.sampling import (
    ConvergentSampling,
    FullSampling,
    PeriodicSampling,
    SamplingProfiler,
)
from repro.core.sites import load_site

SITE = load_site("prog", "main", 1)
OTHER = load_site("prog", "main", 2)


class TestFullSampling:
    def test_always_samples(self):
        policy = FullSampling()
        assert all(policy.should_sample(SITE) for _ in range(100))

    def test_fresh_returns_new_instance(self):
        policy = FullSampling()
        assert policy.fresh() is not policy


class TestPeriodicSampling:
    def test_duty_cycle(self):
        policy = PeriodicSampling(burst=2, interval=10)
        decisions = [policy.should_sample(SITE) for _ in range(100)]
        assert sum(decisions) == 20

    def test_burst_comes_first(self):
        policy = PeriodicSampling(burst=3, interval=6)
        assert [policy.should_sample(SITE) for _ in range(6)] == [
            True, True, True, False, False, False,
        ]

    def test_state_is_per_site(self):
        policy = PeriodicSampling(burst=1, interval=2)
        assert policy.should_sample(SITE)
        assert policy.should_sample(OTHER)  # OTHER starts its own burst

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PeriodicSampling(burst=0, interval=10)
        with pytest.raises(ValueError):
            PeriodicSampling(burst=10, interval=5)

    def test_fresh_copies_parameters(self):
        policy = PeriodicSampling(burst=5, interval=50)
        clone = policy.fresh()
        assert clone.burst == 5 and clone.interval == 50


class TestConvergentSampling:
    def test_backs_off_after_convergence(self):
        policy = ConvergentSampling(
            burst=10,
            base_skip=10,
            max_skip=1000,
            convergence=ConvergenceConfig(delta=0.05, patience=1),
        )
        # Drive the policy directly: bursts of 10, checkpoint each burst
        # with a stable estimate.
        sampled_before = 0
        for _ in range(20):
            if policy.should_sample(SITE):
                sampled_before += 1
        policy.checkpoint(SITE, 0.5)
        policy.checkpoint(SITE, 0.5)  # stable twice -> converged
        state = policy._state[SITE]
        assert state.skip_interval > 10

    def test_drift_resets_interval(self):
        policy = ConvergentSampling(
            burst=5,
            base_skip=10,
            max_skip=1000,
            convergence=ConvergenceConfig(delta=0.02, patience=1, reset_delta=0.05),
        )
        policy.should_sample(SITE)
        policy.checkpoint(SITE, 0.5)
        policy.checkpoint(SITE, 0.5)  # converged; interval doubled
        assert policy._state[SITE].skip_interval == 20
        policy.checkpoint(SITE, 0.9)  # drift: detector resets
        assert policy._state[SITE].skip_interval == 10

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ConvergentSampling(burst=0)
        with pytest.raises(ValueError):
            ConvergentSampling(max_skip=1)

    def test_fresh_preserves_configuration(self):
        policy = ConvergentSampling(burst=7, base_skip=70, max_skip=700, backoff=3.0)
        clone = policy.fresh()
        assert (clone.burst, clone.base_skip, clone.max_skip, clone.backoff) == (7, 70, 700, 3.0)


class TestSamplingProfiler:
    def test_full_sampling_records_everything(self):
        profiler = SamplingProfiler(FullSampling())
        for value in range(50):
            profiler.record(SITE, value)
        assert profiler.seen() == 50
        assert profiler.profiled() == 50
        assert profiler.overhead() == 1.0

    def test_periodic_overhead(self):
        profiler = SamplingProfiler(PeriodicSampling(burst=10, interval=100))
        for value in range(1000):
            profiler.record(SITE, value)
        assert profiler.overhead() == pytest.approx(0.1)
        assert profiler.database.profile_for(SITE).executions == 100

    def test_per_site_counts(self):
        profiler = SamplingProfiler(PeriodicSampling(burst=1, interval=2))
        for _ in range(10):
            profiler.record(SITE, 1)
        for _ in range(4):
            profiler.record(OTHER, 2)
        assert profiler.seen(SITE) == 10
        assert profiler.profiled(SITE) == 5
        assert profiler.seen(OTHER) == 4

    def test_empty_profiler_overhead_zero(self):
        assert SamplingProfiler(FullSampling()).overhead() == 0.0

    def test_checkpoint_cadence_follows_policy_burst(self):
        policy = ConvergentSampling(burst=25, base_skip=75)
        profiler = SamplingProfiler(policy)
        assert profiler.checkpoint_every == 25

    def test_sampled_estimate_tracks_truth_for_stationary_stream(self):
        # For an i.i.d.-ish stream, a 10% sample's invariance estimate
        # should land near the true 50%.
        profiler = SamplingProfiler(PeriodicSampling(burst=10, interval=100))
        for index in range(10_000):
            profiler.record(SITE, index % 2)
        estimate = profiler.database.profile_for(SITE).metrics().inv_top1
        assert estimate == pytest.approx(0.5, abs=0.05)

    def test_convergent_profiler_cheaper_than_periodic_on_long_stable_stream(self):
        convergent = SamplingProfiler(
            ConvergentSampling(
                burst=50,
                base_skip=450,
                max_skip=100_000,
                convergence=ConvergenceConfig(delta=0.02, patience=2),
            )
        )
        periodic = SamplingProfiler(PeriodicSampling(burst=50, interval=500))
        for index in range(100_000):
            value = 1 if index % 10 else 0
            convergent.record(SITE, value)
            periodic.record(SITE, value)
        assert convergent.overhead() < periodic.overhead()
        estimate = convergent.database.profile_for(SITE).metrics().inv_top1
        assert estimate == pytest.approx(0.9, abs=0.05)


class TestRandomSampling:
    def test_rate_respected_statistically(self):
        from repro.core.sampling import RandomSampling

        policy = RandomSampling(rate=0.2, seed=42)
        decisions = [policy.should_sample(SITE) for _ in range(10_000)]
        assert sum(decisions) == pytest.approx(2_000, rel=0.1)

    def test_deterministic_given_seed(self):
        from repro.core.sampling import RandomSampling

        a = RandomSampling(rate=0.5, seed=7)
        b = RandomSampling(rate=0.5, seed=7)
        assert [a.should_sample(SITE) for _ in range(100)] == [
            b.should_sample(SITE) for _ in range(100)
        ]

    def test_fresh_resets_stream(self):
        from repro.core.sampling import RandomSampling

        policy = RandomSampling(rate=0.5, seed=7)
        first = [policy.should_sample(SITE) for _ in range(50)]
        clone = policy.fresh()
        assert [clone.should_sample(SITE) for _ in range(50)] == first

    def test_rejects_bad_rate(self):
        from repro.core.sampling import RandomSampling

        with pytest.raises(ValueError):
            RandomSampling(rate=0.0)
        with pytest.raises(ValueError):
            RandomSampling(rate=1.5)

    def test_random_sampling_degrades_lvp_but_not_invariance(self):
        """The thesis' CPI question: random sampling breaks the
        consecutive pairs LVP is defined over."""
        from repro.core.sampling import RandomSampling

        # Each distinct value appears exactly twice in a row:
        # 0 0 1 1 2 2 ...  True LVP is 0.5 (every second adjacent pair
        # repeats), but two *randomly sampled* executions almost never
        # come from the same pair.
        stream = [i // 2 for i in range(20_000)]
        random_profiler = SamplingProfiler(RandomSampling(rate=0.1, seed=3))
        periodic_profiler = SamplingProfiler(PeriodicSampling(burst=100, interval=1000))
        for value in stream:
            random_profiler.record(SITE, value)
            periodic_profiler.record(SITE, value)
        true_lvp = 0.5
        random_lvp = random_profiler.database.profile_for(SITE).lvp()
        periodic_lvp = periodic_profiler.database.profile_for(SITE).lvp()
        assert abs(periodic_lvp - true_lvp) < 0.05  # bursts keep adjacency
        assert random_lvp < 0.15  # badly biased toward zero
