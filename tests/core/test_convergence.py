"""Tests for convergence detection and convergence curves."""

import pytest

from repro.core.convergence import (
    ConvergenceConfig,
    ConvergenceDetector,
    ConvergencePoint,
    convergence_curve,
)


class TestDetector:
    def test_starts_unconverged(self):
        assert not ConvergenceDetector().converged

    def test_converges_after_patience_stable_checkpoints(self):
        detector = ConvergenceDetector(ConvergenceConfig(delta=0.05, patience=2))
        assert not detector.observe(0.50)
        assert not detector.observe(0.51)  # streak 1
        assert detector.observe(0.52)  # streak 2 -> converged

    def test_unstable_estimates_reset_streak(self):
        detector = ConvergenceDetector(ConvergenceConfig(delta=0.01, patience=2))
        detector.observe(0.5)
        detector.observe(0.505)  # stable
        detector.observe(0.9)  # jump resets
        detector.observe(0.905)
        assert not detector.converged
        assert detector.observe(0.906)

    def test_drift_after_convergence_resets(self):
        config = ConvergenceConfig(delta=0.05, patience=1, reset_delta=0.1)
        detector = ConvergenceDetector(config)
        detector.observe(0.5)
        assert detector.observe(0.5)
        assert detector.converged_estimate == pytest.approx(0.5)
        assert not detector.observe(0.8)  # drift beyond reset_delta
        assert detector.converged_estimate is None

    def test_small_drift_keeps_convergence(self):
        config = ConvergenceConfig(delta=0.05, patience=1, reset_delta=0.1)
        detector = ConvergenceDetector(config)
        detector.observe(0.5)
        detector.observe(0.5)
        assert detector.observe(0.55)  # within reset_delta

    def test_history_records_every_observation(self):
        detector = ConvergenceDetector()
        for estimate in (0.1, 0.2, 0.3):
            detector.observe(estimate)
        assert detector.history == [0.1, 0.2, 0.3]

    def test_manual_reset(self):
        detector = ConvergenceDetector(ConvergenceConfig(patience=1))
        detector.observe(0.4)
        detector.observe(0.4)
        assert detector.converged
        detector.reset()
        assert not detector.converged


class TestConvergenceCurve:
    def test_final_point_covers_whole_stream(self):
        points = convergence_curve([1, 1, 2, 1, 1], checkpoint=2)
        assert points[-1].executions == 5

    def test_exact_attached_to_every_point(self):
        points = convergence_curve([1] * 10 + [2] * 10, checkpoint=5)
        final = points[-1].estimate
        assert all(p.exact == pytest.approx(final) for p in points)

    def test_constant_stream_error_is_zero_everywhere(self):
        points = convergence_curve([7] * 20, checkpoint=4)
        assert all(p.error == pytest.approx(0.0) for p in points)

    def test_estimates_converge_toward_final(self):
        # A stream that settles: early noise then constant.
        stream = [1, 2, 3, 4, 5] + [9] * 195
        points = convergence_curve(stream, checkpoint=10)
        assert points[-1].error == 0.0
        assert points[0].error >= points[-1].error

    def test_checkpoint_spacing(self):
        points = convergence_curve(range(100), checkpoint=25)
        assert [p.executions for p in points] == [25, 50, 75, 100]

    def test_point_error_property(self):
        point = ConvergencePoint(executions=10, estimate=0.6, exact=0.5)
        assert point.error == pytest.approx(0.1)
