"""Unit and property tests for the TNV table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import ValueStreamStats
from repro.core.tnv import TNVEntry, TNVTable
from repro.errors import ProfileError


class TestConstruction:
    def test_defaults_match_paper(self):
        table = TNVTable()
        assert table.capacity == 10
        assert table.steady == 5
        assert table.clear_interval == 2000

    def test_rejects_zero_capacity(self):
        with pytest.raises(ProfileError):
            TNVTable(capacity=0)

    def test_rejects_steady_equal_capacity(self):
        with pytest.raises(ProfileError):
            TNVTable(capacity=4, steady=4)

    def test_rejects_negative_steady(self):
        with pytest.raises(ProfileError):
            TNVTable(capacity=4, steady=-1)

    def test_rejects_zero_clear_interval(self):
        with pytest.raises(ProfileError):
            TNVTable(clear_interval=0)

    def test_clearing_can_be_disabled(self):
        table = TNVTable(clear_interval=None)
        table.record_many(range(100))
        assert table.clears == 0


class TestRecording:
    def test_single_value(self):
        table = TNVTable()
        table.record(42)
        assert table.total == 1
        assert table.count_of(42) == 1
        assert table.top_value() == 42

    def test_counts_accumulate(self):
        table = TNVTable()
        table.record_many([7, 7, 7, 3])
        assert table.count_of(7) == 3
        assert table.count_of(3) == 1

    def test_full_table_drops_new_values(self):
        table = TNVTable(capacity=2, steady=1, clear_interval=None)
        table.record_many(["a", "b", "c"])
        assert "c" not in table
        assert len(table) == 2

    def test_resident_value_still_counted_when_full(self):
        table = TNVTable(capacity=2, steady=1, clear_interval=None)
        table.record_many(["a", "b", "a"])
        assert table.count_of("a") == 2

    def test_total_counts_dropped_values(self):
        table = TNVTable(capacity=1, steady=0, clear_interval=None)
        table.record_many([1, 2, 3, 4])
        assert table.total == 4

    def test_contains(self):
        table = TNVTable()
        table.record(5)
        assert 5 in table
        assert 6 not in table


class TestClearing:
    def test_clear_interval_triggers(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=10)
        table.record_many(range(10))
        assert table.clears == 1

    def test_clear_keeps_steady_part(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=None)
        table.record_many(["hot"] * 10 + ["warm"] * 5 + ["cold1", "cold2"])
        table.clear_bottom()
        assert table.count_of("hot") == 10
        assert table.count_of("warm") == 5
        assert "cold1" not in table
        assert "cold2" not in table

    def test_clear_reopens_slots_for_new_hot_values(self):
        # The design point: a phased trace where the late hot value
        # could never enter a full LFU table.
        lfu = TNVTable(capacity=4, steady=2, clear_interval=None)
        clearing = TNVTable(capacity=4, steady=2, clear_interval=8)
        phase1 = [1, 2, 3, 4] * 3  # fills both tables
        phase2 = [99] * 40  # the eventual top value
        for value in phase1 + phase2:
            lfu.record(value)
            clearing.record(value)
        assert lfu.top_value() != 99  # locked out
        assert clearing.top_value() == 99  # admitted after a clear

    def test_clear_on_small_table_is_noop(self):
        table = TNVTable(capacity=10, steady=5, clear_interval=None)
        table.record_many([1, 2])
        table.clear_bottom()
        assert table.count_of(1) == 1
        assert table.count_of(2) == 1


class TestTop:
    def test_top_orders_by_count(self):
        table = TNVTable()
        table.record_many([1, 2, 2, 3, 3, 3])
        assert [entry.value for entry in table.top(3)] == [3, 2, 1]

    def test_top_is_deterministic_on_ties(self):
        table = TNVTable()
        table.record_many([5, 9])
        first = table.top(2)
        for _ in range(5):
            assert table.top(2) == first

    def test_top_k_limits(self):
        table = TNVTable()
        table.record_many(range(8))
        assert len(table.top(3)) == 3

    def test_top_value_empty(self):
        assert TNVTable().top_value() is None

    def test_entries_are_tnventry(self):
        table = TNVTable()
        table.record(1)
        assert table.top(1) == [TNVEntry(1, 1)]


class TestEstimatedInvariance:
    def test_empty_is_zero(self):
        assert TNVTable().estimated_invariance() == 0.0

    def test_constant_stream_is_one(self):
        table = TNVTable()
        table.record_many([4] * 100)
        assert table.estimated_invariance(1) == 1.0

    def test_uniform_stream(self):
        table = TNVTable(capacity=10, steady=5, clear_interval=None)
        table.record_many([1, 2] * 50)
        assert table.estimated_invariance(1) == pytest.approx(0.5)
        assert table.estimated_invariance(2) == pytest.approx(1.0)

    def test_estimate_is_lower_bound_after_clearing(self):
        # Cleared counts are lost, so the estimate can only undershoot.
        table = TNVTable(capacity=4, steady=1, clear_interval=5)
        values = [1, 2, 3, 4, 5] * 20
        table.record_many(values)
        exact = ValueStreamStats()
        exact.record_many(values)
        assert table.estimated_invariance(1) <= exact.invariance(1) + 1e-9

    def test_never_exceeds_one(self):
        table = TNVTable(capacity=2, steady=1, clear_interval=3)
        table.record_many([1] * 1000)
        assert table.estimated_invariance(10) <= 1.0


class TestMergeAndSerialize:
    def test_merge_sums_counts(self):
        a, b = TNVTable(), TNVTable()
        a.record_many([1, 1, 2])
        b.record_many([1, 3])
        a.merge(b)
        assert a.count_of(1) == 3
        assert a.count_of(3) == 1
        assert a.total == 5

    def test_merge_respects_capacity(self):
        a = TNVTable(capacity=2, steady=1, clear_interval=None)
        b = TNVTable(capacity=2, steady=1, clear_interval=None)
        a.record_many([1, 1, 2])
        b.record_many([3, 3, 3])
        a.merge(b)
        assert len(a) <= 2
        assert a.top_value() == 3

    def test_roundtrip(self):
        table = TNVTable(capacity=6, steady=3, clear_interval=100)
        table.record_many([1, 2, 2, 3, 3, 3])
        clone = TNVTable.from_dict(table.to_dict())
        assert clone.capacity == 6
        assert clone.total == table.total
        assert clone.top(6) == table.top(6)

    def test_roundtrip_preserves_clearing_state(self):
        """Regression: clears/_since_clear used to be dropped by
        to_dict/from_dict, so a restored table cleared at the wrong
        points and diverged from the original on further recording."""
        table = TNVTable(capacity=4, steady=2, clear_interval=10)
        table.record_many(list(range(4)) * 6)  # 24 records -> 2 clears, 4 pending
        assert table.clears == 2
        clone = TNVTable.from_dict(table.to_dict())
        assert clone.clears == table.clears
        assert clone._since_clear == table._since_clear
        # The restored table must keep clearing in lockstep.
        tail = list(range(4, 16))
        table.record_many(tail)
        clone.record_many(tail)
        assert clone.clears == table.clears
        assert clone.snapshot() == table.snapshot()

    def test_roundtrip_accepts_legacy_payload(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=10)
        table.record_many([1, 2, 3])
        payload = table.to_dict()
        del payload["clears"]
        del payload["since_clear"]
        clone = TNVTable.from_dict(payload)
        assert clone.clears == 0
        assert clone.top(4) == table.top(4)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50), max_size=500))
def test_property_total_equals_stream_length(values):
    table = TNVTable(capacity=5, steady=2, clear_interval=17)
    table.record_many(values)
    assert table.total == len(values)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=500))
def test_property_resident_counts_never_exceed_true_counts(values):
    table = TNVTable(capacity=4, steady=2, clear_interval=13)
    exact = ValueStreamStats()
    for value in values:
        table.record(value)
        exact.record(value)
    for entry in table.snapshot():
        assert entry.count <= exact.histogram[entry.value]


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=400),
    st.integers(min_value=1, max_value=9),
)
def test_property_estimate_monotone_in_k(values, k):
    table = TNVTable()
    table.record_many(values)
    assert table.estimated_invariance(k) <= table.estimated_invariance(k + 1) + 1e-12


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=300))
def test_property_len_bounded_by_capacity(values):
    table = TNVTable(capacity=7, steady=3, clear_interval=11)
    table.record_many(values)
    assert len(table) <= 7


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=300))
def test_property_dominant_value_always_found(values):
    """If one value is an absolute majority, every configuration finds it."""
    dominant = 7777
    stream = []
    for value in values:
        stream.append(dominant)
        stream.append(dominant)
        stream.append(value)
    table = TNVTable(capacity=3, steady=1, clear_interval=5)
    table.record_many(stream)
    assert table.top_value() == dominant


class TestHealth:
    def test_fresh_table_health(self):
        health = TNVTable(capacity=4, steady=2, clear_interval=10).health()
        assert health["resident"] == 0
        assert health["clears"] == 0
        assert health["evictions"] == 0
        assert health["churn"] == 0.0

    def test_counters_cost_nothing_before_a_clear(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=None)
        table.record_many([1, 2, 3])
        health = table.health()
        assert health["turnover"] == 0  # folded only at clear boundaries
        assert health["evictions"] == 0

    def test_evictions_and_turnover(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=None)
        table.record_many([1, 1, 2, 2, 3, 4])  # full: 4 resident
        table.clear_bottom()
        assert table.turnover == 4  # all four values were new
        assert table.evictions == 2  # 3 and 4 evicted
        assert table.saturated_clears == 1
        assert len(table) == 2

    def test_promotions_track_steady_set_changes(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=None)
        table.record_many([1, 1, 2, 2, 3])
        table.clear_bottom()
        assert table.promotions == 2  # {1, 2}: first steady set
        # 3 and 4 out-count 1: the steady set shifts by one value.
        table.record_many([3, 3, 3, 4, 4, 4])
        table.clear_bottom()
        assert table.promotions == 4
        assert table.last_turnover == 2  # 3 and 4 re-admitted

    def test_stable_stream_stops_promoting(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=5)
        table.record_many([1, 1, 1, 2, 2] * 8)  # clears every 5 records
        assert table.promotions == 2  # only the initial promotion
        assert table.last_turnover == 0

    def test_underfull_clear_is_not_saturated(self):
        table = TNVTable(capacity=10, steady=5, clear_interval=None)
        table.record_many([1, 2])
        table.clear_bottom()
        assert table.saturated_clears == 0
        assert table.evictions == 0

    def test_health_roundtrip(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=5)
        table.record_many(list(range(8)) * 4)
        clone = TNVTable.from_dict(table.to_dict())
        assert clone.health() == table.health()

    def test_health_roundtrip_accepts_legacy_payload(self):
        table = TNVTable(capacity=4, steady=2, clear_interval=5)
        table.record_many(list(range(8)) * 4)
        payload = table.to_dict()
        del payload["health"]
        clone = TNVTable.from_dict(payload)
        assert clone.evictions == 0
        assert clone.top(4) == table.top(4)

    def test_merge_adds_health_counters(self):
        a = TNVTable(capacity=4, steady=2, clear_interval=5)
        b = TNVTable(capacity=4, steady=2, clear_interval=5)
        a.record_many(list(range(8)) * 2)
        b.record_many(list(range(8)) * 2)
        evictions = a.evictions
        turnover = a.turnover
        a.merge(b)
        assert a.evictions == evictions + b.evictions
        assert a.turnover == turnover + b.turnover
