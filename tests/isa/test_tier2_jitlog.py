"""Tier-2 jitlog integration: the engine's journal of its own lifecycle.

``tests/obs/test_jitlog.py`` covers the journal data structure; these
tests pin the *instrumentation* — that the tier-2 engine emits the
right typed events with the right reasons at each lifecycle point,
that the journal is byte-deterministic across runs, that enabling it
changes nothing observable (results, profiles), that the
``_metrics_prev`` delta baseline survives re-decodes, and that
deopt/despecialize decisions tee into the flight recorder.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind
from repro.errors import MachineError
from repro.isa.assembler import assemble
from repro.isa.instrument import ALL_TARGETS, ValueProfiler
from repro.isa.machine import Machine
from repro.isa.tier2 import _CODE_CACHE, Tier2Config
from repro.obs.flight import FLIGHT
from repro.obs.jitlog import JITLOG
from repro.obs.metrics import METRICS

from tests.isa.test_engine_differential import _random_program
from tests.isa.test_tier2 import _PERTURB, _hot_config


@pytest.fixture(autouse=True)
def _clean_singletons():
    JITLOG.disable()
    JITLOG.reset()
    FLIGHT.disable()
    METRICS.disable()
    METRICS.reset()
    yield
    JITLOG.disable()
    JITLOG.reset()
    FLIGHT.disable()
    METRICS.disable()
    METRICS.reset()


def _run_perturb(config=None):
    program = assemble(_PERTURB)
    machine = Machine(
        program, engine="tier2", tier2_config=config or _hot_config()
    )
    machine.run()
    return machine


def test_lifecycle_events_with_reasons():
    JITLOG.enable()
    _run_perturb()
    events = JITLOG.events()
    by_type = {}
    for event in events:
        by_type.setdefault(event["type"], []).append(event)

    assert "hot" in by_type and "quicken" in by_type
    hot = by_type["hot"][0]
    assert hot["program"] == "perturb"
    assert hot["count"] >= hot["threshold"]

    guarded = [e for e in by_type["quicken"] if e["mode"] == "guarded"]
    assert guarded, "perturb's hot loop should quicken guarded"
    first = guarded[0]
    # r8 starts at 5 and is stable through warm-up: it must be among
    # the folded bindings, serialized as sorted [reg, value] pairs.
    assert [8, 5] in [list(b) for b in first["bindings"]]
    assert first["fused"] >= 2
    assert first["pc_range"][0] == first["block"]
    assert first["guards"] == len(first["bindings"])
    assert first["net"] is not None and first["net"] > 0

    # The program perturbs r8 -> guard failures name the register and
    # both values.
    fails = by_type.get("guard_fail", [])
    assert fails, "perturbation never failed a guard"
    assert {e["reg"] for e in fails} == {8}
    assert all(e["expected"] != e["observed"] for e in fails)
    assert all(e["entries"] >= 0 for e in fails)

    assert by_type.get("deopt"), "guard failures must journal deopts"
    assert by_type.get("requicken"), "first perturbation should requicken"
    requick = by_type["requicken"][0]
    assert requick["bindings"], "requicken carries the refreshed bindings"
    assert by_type.get("despecialize"), (
        "second perturbation should exhaust the budget"
    )
    assert by_type["despecialize"][0]["budget"] == 1

    # The event clock (instructions retired) is monotone non-decreasing.
    clocks = [e["clock"] for e in events]
    assert clocks == sorted(clocks)
    assert JITLOG.counts["quicken"] == len(by_type["quicken"])


def test_reject_events_name_the_limit():
    JITLOG.enable()
    # A benefit model that never pays off forces reason="benefit".
    from repro.specialize.analysis import BenefitModel

    config = _hot_config(
        model=BenefitModel(saving_per_call=0.0, guard_cost=10.0,
                           specialization_cost=1e9)
    )
    _run_perturb(config)
    rejects = [e for e in JITLOG.events() if e["type"] == "reject"]
    benefit = [e for e in rejects if e["reason"] == "benefit"]
    assert benefit, "hopeless benefit model should journal benefit rejects"
    assert all(e["net"] <= 0 for e in benefit)

    JITLOG.reset()
    # min_fused above any trace length rejects every candidate.
    _run_perturb(_hot_config(min_fused=64))
    rejects = [e for e in JITLOG.events() if e["type"] == "reject"]
    assert rejects and {e["reason"] for e in rejects} == {"min_fused"}
    assert all(e["limit"] == 64 for e in rejects)

    JITLOG.reset()
    # A tiny max_trace caps growth: the cap is journaled as a reject
    # even though the truncated trace itself still compiles.
    _run_perturb(_hot_config(max_trace=3))
    events = JITLOG.events()
    capped = [e for e in events
              if e["type"] == "reject" and e["reason"] == "max_trace"]
    assert capped and all(e["limit"] == 3 for e in capped)
    assert any(e["type"] == "quicken" and e["capped"] for e in events)


def test_preheat_event():
    program = assemble(_PERTURB)
    database = ProfileDatabase(name="t2")
    profiler = ValueProfiler(program, database, targets=ALL_TARGETS, buffered=True)
    warm = Machine(program, observer=profiler, engine="threaded")
    warm.run()

    JITLOG.enable()
    fresh = Machine(program, engine="tier2", tier2_config=_hot_config())
    seeded = fresh.tier2_preheat(database)
    preheats = [e for e in JITLOG.events() if e["type"] == "preheat"]
    assert len(preheats) == seeded >= 1
    assert all(e["threshold"] == 1 for e in preheats)


def test_code_cache_events():
    JITLOG.enable()
    cache_snapshot = dict(_CODE_CACHE)
    _CODE_CACHE.clear()
    try:
        _run_perturb()
        first = [e["type"] for e in JITLOG.events()
                 if e["type"].startswith("cache_")]
        assert "cache_miss" in first, "cold cache must journal misses"
        JITLOG.reset()
        _run_perturb()
        second = [e["type"] for e in JITLOG.events()
                  if e["type"].startswith("cache_")]
        assert second and all(t == "cache_hit" for t in second), (
            "identical program on a warm cache must hit for every compile"
        )
    finally:
        _CODE_CACHE.clear()
        _CODE_CACHE.update(cache_snapshot)


def test_block_summaries_shape():
    machine = _run_perturb()
    summaries = machine.tier2_block_summaries()
    assert summaries, "perturb has candidate blocks"
    assert [s["start"] for s in summaries] == sorted(s["start"] for s in summaries)
    modes = {s["mode"] for s in summaries}
    assert modes <= {"counting", "guarded", "fused", "rejected"}
    hot = [s for s in summaries if s["mode"] != "counting"]
    assert hot and any(s["fails"] for s in summaries)
    for s in summaries:
        assert s["pcs"][0] == s["start"]
        assert isinstance(s["bindings"], list)
    # Off the tier-2 engine there are no summaries.
    other = Machine(assemble(_PERTURB), engine="threaded")
    assert other.tier2_block_summaries() is None


def _journal_of(source: str, budget: int = 200_000) -> str:
    """One run's journal as canonical JSON, from a cold code cache."""
    program = assemble(source)
    machine = Machine(program, engine="tier2", tier2_config=_hot_config())
    machine.set_input([3, 1, 4, 1, 5, 9, 2, 6])
    JITLOG.enable()
    cache_snapshot = dict(_CODE_CACHE)
    _CODE_CACHE.clear()
    try:
        machine.run(max_instructions=budget)
    except MachineError:
        pass  # traps and budget exhaustion journal deterministically too
    finally:
        _CODE_CACHE.clear()
        _CODE_CACHE.update(cache_snapshot)
    journal = json.dumps(JITLOG.events(), sort_keys=True)
    JITLOG.disable()
    JITLOG.reset()
    return journal


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_journal_byte_identical_across_runs(seed):
    source = _random_program(seed)
    assert _journal_of(source) == _journal_of(source)


def test_journal_byte_identical_on_perturb():
    assert _journal_of(_PERTURB) == _journal_of(_PERTURB)


def test_results_and_profiles_identical_with_and_without_journal():
    def run(journal: bool):
        program = assemble(_PERTURB)
        database = ProfileDatabase(name="t2")
        profiler = ValueProfiler(
            program, database, targets=ALL_TARGETS, buffered=True
        )
        machine = Machine(
            program, observer=profiler, engine="tier2",
            tier2_config=_hot_config(),
        )
        if journal:
            JITLOG.enable()
        result = machine.run()
        if journal:
            assert JITLOG.total_events > 0
            JITLOG.disable()
            JITLOG.reset()
        return (
            list(machine.output),
            result.instructions_executed,
            machine.cycles,
            json.dumps(database.to_json(), sort_keys=True),
        )

    assert run(journal=False) == run(journal=True)


def test_metrics_prev_survives_redecode():
    """Regression: re-decoding (observer swap between runs) must not
    leave ``_metrics_prev`` holding the previous run's totals — the
    next delta emission would subtract them from fresh counters and
    under-report ``machine.tier2.*``."""
    program = assemble(_PERTURB)
    machine = Machine(program, engine="tier2", tier2_config=_hot_config())
    initial_registers = list(machine.registers)

    METRICS.reset()
    METRICS.enable()
    try:
        machine.run()
        first = machine.tier2_stats()["quickened"]
        assert first >= 1

        # Swap in an observer: the next run re-decodes, resetting the
        # engine's lifecycle counters back to zero.
        database = ProfileDatabase(name="t2")
        machine.observer = ValueProfiler(
            program, database, targets=ALL_TARGETS, buffered=True
        )
        machine.pc = 0
        machine.halted = False
        machine.registers[:] = initial_registers
        machine.run()
        second = machine.tier2_stats()["quickened"]
        assert second >= 1

        counters = METRICS.snapshot()["counters"]
        assert counters["machine.tier2.quickened"] == first + second
        assert counters["machine.tier2.deopts"] >= 1
    finally:
        METRICS.disable()
        METRICS.reset()


def test_deopt_and_despecialize_tee_into_flight_recorder():
    FLIGHT.enable()
    _run_perturb()
    opcodes = [site.opcode for _, site, _ in FLIGHT.events()]
    assert "tier2.deopt" in opcodes
    assert "tier2.despecialize" in opcodes
    for _, site, value in FLIGHT.events():
        assert site.kind is SiteKind.INSTRUCTION
        assert site.program == "perturb"
        assert site.label.isdigit(), "label is the block leader pc"
        assert isinstance(value, int) and value >= 1


def test_flight_tee_without_jitlog_enabled():
    # The tee rides FLIGHT.enabled alone — no journal required.
    FLIGHT.enable()
    assert not JITLOG.enabled
    _run_perturb()
    assert any(site.opcode == "tier2.deopt" for _, site, _ in FLIGHT.events())
    assert JITLOG.total_events == 0
