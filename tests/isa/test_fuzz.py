"""Property/fuzz tests: random structured VPA programs.

A generator builds random but well-formed programs (straight-line
arithmetic, bounded counted loops, procedure calls, table accesses) and
the properties assert machine-level invariants that must hold for *any*
program: termination within budget, ``r0`` pinned to zero, memory
bounds respected, deterministic re-execution, observer transparency,
and specializer semantic preservation under arbitrary bindings.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import ProfileDatabase
from repro.isa.assembler import assemble
from repro.isa.instrument import ProfileTarget, ValueProfiler
from repro.isa.machine import Machine, run_program
from repro.isa.optimize import specialize_procedure, written_registers_transitive

# Registers the generator uses for scratch computation (avoids r0, the
# argument registers used for helper calls, sp and lr).
_SCRATCH = list(range(8, 26))


def _random_program(seed: int) -> str:
    """A random but always-terminating, always-in-bounds program."""
    rng = random.Random(seed)
    lines = [
        ".program fuzz",
        ".data",
        "table: .space 64",
        ".text",
        ".proc main nargs=0",
        "    la r26, table",
    ]
    # random initialisation
    for reg in _SCRATCH:
        lines.append(f"    li r{reg}, {rng.randint(-1000, 1000)}")

    binary_ops = ["add", "sub", "mul", "and", "or", "xor", "slt", "seq", "sne", "sll", "srl", "sra"]
    immediate_ops = ["addi", "subi", "muli", "andi", "ori", "xori", "slti", "seqi", "snei"]

    def random_statements(count: int, loop_depth: int) -> None:
        for _ in range(count):
            choice = rng.random()
            rd = rng.choice(_SCRATCH)
            ra = rng.choice(_SCRATCH)
            rb = rng.choice(_SCRATCH)
            if choice < 0.45:
                op = rng.choice(binary_ops)
                if op in ("sll", "srl", "sra"):
                    # keep shift amounts sane via a masked temp
                    lines.append(f"    andi r27, r{rb}, 15")
                    lines.append(f"    {op} r{rd}, r{ra}, r27")
                else:
                    lines.append(f"    {op} r{rd}, r{ra}, r{rb}")
            elif choice < 0.70:
                op = rng.choice(immediate_ops)
                imm = rng.randint(-64, 64)
                if op in ("slli", "srli", "srai"):
                    imm = rng.randint(0, 16)
                lines.append(f"    {op} r{rd}, r{ra}, {imm}")
            elif choice < 0.85:
                offset = rng.randint(0, 63)
                if rng.random() < 0.5:
                    lines.append(f"    st r{rd}, {offset}(r26)")
                else:
                    lines.append(f"    ld r{rd}, {offset}(r26)")
            elif choice < 0.95 and loop_depth == 0:
                # bounded counted loop
                label = f"loop_{len(lines)}"
                iterations = rng.randint(1, 8)
                lines.append(f"    li r28, {iterations}")
                lines.append(f"{label}:")
                random_statements(rng.randint(1, 3), loop_depth + 1)
                lines.append("    subi r28, r28, 1")
                lines.append(f"    bnez r28, {label}")
            else:
                lines.append(f"    mov r1, r{ra}")
                lines.append(f"    li r2, {rng.randint(-8, 8)}")
                lines.append("    call helper")
                lines.append(f"    mov r{rd}, r1")

    random_statements(rng.randint(4, 12), 0)
    lines.append(f"    out r{rng.choice(_SCRATCH)}")
    lines.append("    halt")
    lines.append(".endproc")
    lines.append(".proc helper nargs=2")
    lines.append(f"    muli r1, r1, {rng.randint(-4, 4)}")
    lines.append("    add r1, r1, r2")  # r2 is read-only: bindable
    lines.append(f"    addi r1, r1, {rng.randint(-9, 9)}")
    lines.append("    ret")
    lines.append(".endproc")
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_fuzz_program_terminates_and_respects_invariants(seed):
    program = assemble(_random_program(seed))
    machine = Machine(program)
    result = machine.run(max_instructions=200_000)
    assert result.halted
    assert machine.registers[0] == 0
    assert len(result.output) == 1
    assert result.cycles >= result.instructions_executed


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_fuzz_execution_is_deterministic(seed):
    program = assemble(_random_program(seed))
    first = run_program(program, max_instructions=200_000)
    second = run_program(program, max_instructions=200_000)
    assert first.output == second.output
    assert first.instructions_executed == second.instructions_executed


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_fuzz_observer_is_transparent(seed):
    program = assemble(_random_program(seed))
    plain = run_program(program, max_instructions=200_000)
    db = ProfileDatabase()
    observed = run_program(
        program,
        observer=ValueProfiler(program, db, targets=list(ProfileTarget)),
        max_instructions=200_000,
    )
    assert plain.output == observed.output
    assert plain.cycles == observed.cycles


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=-100, max_value=100),
)
def test_fuzz_specializer_preserves_semantics(seed, bound_value):
    """Specializing helper's argument on ANY value — matching the real
    calls or not — must never change program output (the guard falls
    back when the binding doesn't hold)."""
    program = assemble(_random_program(seed))
    helper = program.procedures["helper"]
    assert 2 not in written_registers_transitive(program, helper)
    specialized, _ = specialize_procedure(program, "helper", {2: bound_value})
    from repro.isa.optimize import patch_call_site

    call_pcs = [
        inst.pc
        for inst in specialized.instructions
        if inst.opcode == "jal" and inst.target == helper.start
    ]
    for pc in call_pcs:
        patch_call_site(specialized, pc, "helper__spec")
    base = run_program(program, max_instructions=400_000)
    spec = run_program(specialized, max_instructions=400_000)
    assert spec.output == base.output
