"""Differential tests: every engine is bit-identical to simple.

The pre-decoded direct-threaded engine re-implements every opcode as a
bound closure, and the tier-2 engine re-implements hot *blocks* as
generated superinstructions behind guards; the only acceptable
difference from the reference ``simple`` loop is speed.  A randomized
program generator — all opcode families, division by (possibly) zero,
loads/stores that can leave the data segment, computed jumps that can
leave the code segment, writes to the hardwired ``r0``, and budgets
small enough to exhaust — drives all engines and asserts identical
results, identical machine state, identical trap messages, and
identical value profiles.  The tier-2 leg runs with an aggressive
config (hot threshold 2, fail limit 2) so the random programs exercise
quickening, guard failure, deopt, requickening, and despecialization
within the small budgets.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import ProfileDatabase
from repro.errors import MachineError
from repro.isa.assembler import assemble
from repro.isa.instrument import ALL_TARGETS, ProfileTarget, ValueProfiler
from repro.isa.machine import Machine
from repro.isa.tier2 import Tier2Config

_ENGINES = ("simple", "threaded", "tier2")


def _hot_tier2_config() -> Tier2Config:
    """A tier-2 config that quickens (and thrashes) fast in tiny runs."""
    return Tier2Config(hot_threshold=2, fail_limit=2, requicken_budget=1)

_SCRATCH = list(range(8, 26))

_BINARY = [
    "add", "sub", "mul", "and", "or", "xor",
    "slt", "seq", "sne", "sll", "srl", "sra",
]
_IMMEDIATE = [
    "addi", "subi", "muli", "andi", "ori", "xori",
    "slti", "seqi", "snei", "slli", "srli", "srai",
]
_DIVIDES = ["div", "rem"]
_DIVIDES_IMM = ["divi", "remi"]


def _random_program(seed: int) -> str:
    """A random program that may trap, wander off-segment, or loop.

    Unlike the fuzz-suite generator this one *wants* failure modes:
    whatever it produces, both engines must do the same thing with it.
    """
    rng = random.Random(seed)
    lines = [
        ".program diff",
        ".data",
        "table: .space 64",
        ".text",
        ".proc main nargs=0",
        "    la r26, table",
    ]
    for reg in _SCRATCH:
        lines.append(f"    li r{reg}, {rng.randint(-1000, 1000)}")

    def statements(count: int, loop_depth: int) -> None:
        for _ in range(count):
            choice = rng.random()
            # rd == 0 sometimes: writes to the hardwired zero register.
            rd = 0 if rng.random() < 0.05 else rng.choice(_SCRATCH)
            ra = rng.choice(_SCRATCH)
            rb = rng.choice(_SCRATCH)
            if choice < 0.35:
                op = rng.choice(_BINARY)
                lines.append(f"    {op} r{rd}, r{ra}, r{rb}")
            elif choice < 0.55:
                op = rng.choice(_IMMEDIATE)
                imm = rng.randint(0, 16) if op.endswith(("lli", "rli", "rai")) else rng.randint(-64, 64)
                lines.append(f"    {op} r{rd}, r{ra}, {imm}")
            elif choice < 0.70:
                # division: register divisors are whatever the program
                # computed (possibly zero); immediate divisors include
                # zero outright.
                if rng.random() < 0.5:
                    lines.append(f"    {rng.choice(_DIVIDES)} r{rd}, r{ra}, r{rb}")
                else:
                    imm = rng.choice((0, 1, 2, 3, -5, 7))
                    lines.append(f"    {rng.choice(_DIVIDES_IMM)} r{rd}, r{ra}, {imm}")
            elif choice < 0.82:
                # memory: base r26 is the table, but the offset may
                # push the address past it, and sometimes the base is a
                # scratch register holding an arbitrary value.
                base = 26 if rng.random() < 0.7 else ra
                offset = rng.randint(-8, 80)
                if rng.random() < 0.5:
                    lines.append(f"    st r{rb}, {offset}(r{base})")
                else:
                    lines.append(f"    ld r{rd}, {offset}(r{base})")
            elif choice < 0.88:
                lines.append("    in r%d" % rng.choice(_SCRATCH))
                lines.append(f"    out r{ra}")
            elif choice < 0.94 and loop_depth == 0:
                label = f"loop_{len(lines)}"
                lines.append(f"    li r28, {rng.randint(1, 6)}")
                lines.append(f"{label}:")
                statements(rng.randint(1, 3), loop_depth + 1)
                lines.append("    subi r28, r28, 1")
                lines.append(f"    bnez r28, {label}")
            elif choice < 0.97:
                lines.append(f"    mov r1, r{ra}")
                lines.append(f"    li r2, {rng.randint(-8, 8)}")
                lines.append("    call helper")
                lines.append(f"    mov r{rd}, r1")
            else:
                # computed jump through a scratch register: lands on an
                # arbitrary pc, very often outside the code segment.
                lines.append(f"    jr r{ra}")

    statements(rng.randint(4, 14), 0)
    lines.append("    out r9")
    lines.append("    halt")
    lines.append(".endproc")
    lines.append(".proc helper nargs=2")
    lines.append(f"    muli r1, r1, {rng.randint(-4, 4)}")
    lines.append("    add r1, r1, r2")
    lines.append(f"    divi r1, r1, {rng.choice((0, 1, 3))}")
    lines.append("    ret")
    lines.append(".endproc")
    return "\n".join(lines)


def _run(program, engine: str, budget: int, buffered: bool):
    """Full observable outcome of one run under one engine.

    Returns a tuple covering everything a consumer could see: the
    RunResult (or the exact trap message), final machine state, dynamic
    counters, and the value-profile database contents (which also
    witnesses that error paths flushed buffered observers).
    """
    database = ProfileDatabase(name="diff")
    profiler = ValueProfiler(
        program, database, targets=ALL_TARGETS, buffered=buffered
    )
    config = _hot_tier2_config() if engine == "tier2" else None
    machine = Machine(
        program, observer=profiler, engine=engine, tier2_config=config
    )
    machine.set_input([3, 1, 4, 1, 5, 9, 2, 6])
    try:
        result = machine.run(max_instructions=budget)
        outcome = ("ok", result)
    except MachineError as error:
        outcome = ("error", str(error))
    return (
        outcome,
        list(machine.registers),
        machine.pc,
        machine.cycles,
        machine.halted,
        list(machine.output),
        (
            machine.instructions_executed,
            machine.dynamic_loads,
            machine.dynamic_stores,
            machine.dynamic_calls,
            machine.dynamic_defines,
            dict(machine.procedure_calls),
        ),
        database.to_json(),
    )


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=100_000),
    st.sampled_from([25, 400, 50_000]),
    st.booleans(),
)
def test_engines_agree_on_random_programs(seed, budget, buffered):
    program = assemble(_random_program(seed))
    simple = _run(program, "simple", budget, buffered)
    threaded = _run(program, "threaded", budget, buffered)
    assert threaded == simple
    tier2 = _run(program, "tier2", budget, buffered)
    assert tier2 == simple


@pytest.mark.parametrize("engine", _ENGINES)
def test_budget_error_flushes_buffered_observer(engine):
    """Budget exhaustion must not swallow buffered profile events.

    ``Machine.run`` raises on an exhausted budget, but a buffered
    observer has events in flight; they must be flushed before the
    raise so a partial profile of the truncated run survives.
    """
    source = """
    .program spin
    .text
    .proc main nargs=0
        li r8, 0
    loop:
        addi r8, r8, 1
        j loop
    .endproc
    """
    program = assemble(source)
    database = ProfileDatabase(name="spin")
    profiler = ValueProfiler(
        program,
        database,
        targets=(ProfileTarget.INSTRUCTIONS,),
        buffered=True,
        flush_threshold=10_000,  # never reached: only the flush delivers
    )
    machine = Machine(program, observer=profiler, engine=engine)
    with pytest.raises(MachineError, match="budget"):
        machine.run(max_instructions=100)
    assert database.total_executions() > 0, "events died in the buffer"


@pytest.mark.parametrize("engine", _ENGINES)
def test_trap_flushes_buffered_observer(engine):
    source = """
    .program zdiv
    .text
    .proc main nargs=0
        li r8, 7
        divi r9, r8, 0
        halt
    .endproc
    """
    program = assemble(source)
    database = ProfileDatabase(name="zdiv")
    profiler = ValueProfiler(
        program,
        database,
        targets=(ProfileTarget.INSTRUCTIONS,),
        buffered=True,
        flush_threshold=10_000,
    )
    machine = Machine(program, observer=profiler, engine=engine)
    with pytest.raises(MachineError, match="division by zero"):
        machine.run()
    assert database.total_executions() > 0


def test_engine_selection_resolves_env(monkeypatch):
    source = ".program tiny\n.text\n.proc main nargs=0\n    halt\n.endproc\n"
    program = assemble(source)
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_TIER2", raising=False)
    assert Machine(program).engine == "threaded"
    assert Machine(program, engine="simple").engine == "simple"
    assert Machine(program, engine="tier2").engine == "tier2"
    monkeypatch.setenv("REPRO_ENGINE", "simple")
    assert Machine(program).engine == "simple"
    assert Machine(program, engine="auto").engine == "simple"
    monkeypatch.setenv("REPRO_ENGINE", "tier2")
    assert Machine(program).engine == "tier2"
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    with pytest.raises(MachineError):
        Machine(program)


def test_auto_engages_tier2_only_on_opt_in(monkeypatch):
    """``auto`` prefers threaded unless ``REPRO_TIER2`` opts in.

    The tier-2 engine is bit-identical but pays warm-up costs, so
    ``auto`` only engages it when asked; an explicit ``REPRO_ENGINE``
    still wins over the opt-in flag.
    """
    source = ".program tiny\n.text\n.proc main nargs=0\n    halt\n.endproc\n"
    program = assemble(source)
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    for flag in ("1", "true", "yes", "on"):
        monkeypatch.setenv("REPRO_TIER2", flag)
        assert Machine(program).engine == "tier2"
        assert Machine(program, engine="auto").engine == "tier2"
    for flag in ("", "0", "false", "no", "off"):
        monkeypatch.setenv("REPRO_TIER2", flag)
        assert Machine(program).engine == "threaded"
    monkeypatch.setenv("REPRO_TIER2", "1")
    monkeypatch.setenv("REPRO_ENGINE", "threaded")
    assert Machine(program).engine == "threaded"
