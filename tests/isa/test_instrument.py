"""Tests for the ATOM-style instrumentation layer."""

import pytest

from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind
from repro.isa.assembler import assemble
from repro.isa.instrument import (
    FanoutObserver,
    ProfileTarget,
    ValueProfiler,
    ValueTraceCollector,
)
from repro.isa.machine import Machine, run_program

SOURCE = """
.data
arr: .word 10, 10, 10, 7
.text
.proc main nargs=0
    la r10, arr
    li r11, 4
loop:
    beqz r11, done
    ld r12, 0(r10)
    st r12, 4(r10)
    inc r10
    dec r11
    j loop
done:
    li r1, 3
    li r2, 4
    call f
    out r1
    halt
.endproc
.proc f nargs=2
    add r1, r1, r2
    ret
.endproc
"""


def profile(targets):
    program = assemble(SOURCE, name="t")
    db = ProfileDatabase(name="t")
    observer = ValueProfiler(program, db, targets=targets)
    run_program(program, observer=observer)
    return program, db


class TestValueProfiler:
    def test_load_target_records_only_loads(self):
        _, db = profile([ProfileTarget.LOADS])
        assert db.sites(SiteKind.LOAD)
        assert not db.sites(SiteKind.INSTRUCTION)
        assert not db.sites(SiteKind.MEMORY)

    def test_load_values_recorded(self):
        _, db = profile([ProfileTarget.LOADS])
        (site,) = db.sites(SiteKind.LOAD)
        exact = db.profile_for(site).exact
        assert sorted(exact.histogram.elements()) == [7, 10, 10, 10]

    def test_instruction_target_includes_loads(self):
        program, db = profile([ProfileTarget.INSTRUCTIONS])
        load_pcs = {inst.pc for inst in program.instructions if inst.info.is_load}
        recorded_pcs = {int(s.label) for s in db.sites(SiteKind.INSTRUCTION)}
        assert load_pcs <= recorded_pcs

    def test_instruction_sites_carry_opcode(self):
        _, db = profile([ProfileTarget.INSTRUCTIONS])
        opcodes = {site.opcode for site in db.sites(SiteKind.INSTRUCTION)}
        assert "li" in opcodes and "addi" in opcodes

    def test_branches_not_recorded(self):
        _, db = profile([ProfileTarget.INSTRUCTIONS])
        opcodes = {site.opcode for site in db.sites(SiteKind.INSTRUCTION)}
        assert "beq" not in opcodes and "j" not in opcodes

    def test_memory_target_records_stores_per_address(self):
        _, db = profile([ProfileTarget.MEMORY])
        sites = db.sites(SiteKind.MEMORY)
        assert len(sites) == 4  # four distinct addresses stored to
        total = sum(db.profile_for(s).executions for s in sites)
        assert total == 4

    def test_parameter_target_records_args(self):
        _, db = profile([ProfileTarget.PARAMETERS])
        sites = db.sites(SiteKind.PARAMETER)
        assert {s.label for s in sites} == {"arg0", "arg1"}
        values = {
            s.label: db.profile_for(s).tnv.top_value() for s in sites
        }
        assert values == {"arg0": 3, "arg1": 4}

    def test_dynamic_counts_match_database(self):
        program = assemble(SOURCE, name="t")
        db = ProfileDatabase()
        observer = ValueProfiler(program, db, targets=[ProfileTarget.LOADS])
        result = run_program(program, observer=observer)
        assert db.total_executions(SiteKind.LOAD) == result.dynamic_loads

    def test_procedure_attribution(self):
        _, db = profile([ProfileTarget.INSTRUCTIONS])
        procedures = {site.procedure for site in db.sites(SiteKind.INSTRUCTION)}
        assert {"main", "f"} <= procedures


class TestValueTraceCollector:
    def test_traces_preserve_order(self):
        program = assemble(SOURCE, name="t")
        collector = ValueTraceCollector(program, targets=[ProfileTarget.LOADS])
        run_program(program, observer=collector)
        (trace,) = collector.traces.values()
        assert trace == [10, 10, 10, 7]

    def test_max_per_site_caps(self):
        program = assemble(SOURCE, name="t")
        collector = ValueTraceCollector(
            program, targets=[ProfileTarget.LOADS], max_per_site=2
        )
        run_program(program, observer=collector)
        (trace,) = collector.traces.values()
        assert trace == [10, 10]

    def test_parameter_traces(self):
        program = assemble(SOURCE, name="t")
        collector = ValueTraceCollector(program, targets=[ProfileTarget.PARAMETERS])
        run_program(program, observer=collector)
        assert sorted(v for t in collector.traces.values() for v in t) == [3, 4]


class TestFanoutObserver:
    def test_both_observers_fed_identically(self):
        program = assemble(SOURCE, name="t")
        db1, db2 = ProfileDatabase(), ProfileDatabase()
        fan = FanoutObserver(
            [
                ValueProfiler(program, db1, targets=[ProfileTarget.LOADS]),
                ValueProfiler(program, db2, targets=[ProfileTarget.LOADS]),
            ]
        )
        run_program(program, observer=fan)
        (site,) = db1.sites(SiteKind.LOAD)
        assert db1.profile_for(site).executions == db2.profile_for(site).executions

    def test_fanout_covers_all_event_kinds(self):
        program = assemble(SOURCE, name="t")
        db = ProfileDatabase()
        fan = FanoutObserver([ValueProfiler(program, db, targets=list(ProfileTarget))])
        run_program(program, observer=fan)
        assert db.sites(SiteKind.LOAD)
        assert db.sites(SiteKind.MEMORY)
        assert db.sites(SiteKind.PARAMETER)
        assert db.sites(SiteKind.INSTRUCTION)


class TestOverheadModel:
    def test_unobserved_run_matches_observed_output(self):
        program = assemble(SOURCE, name="t")
        plain = run_program(program)
        db = ProfileDatabase()
        observed = run_program(
            program, observer=ValueProfiler(program, db, targets=list(ProfileTarget))
        )
        assert plain.output == observed.output
        assert plain.instructions_executed == observed.instructions_executed


class TestCallingContext:
    CTX_SOURCE = """
.text
.proc main nargs=0
    li r1, 1
    call f          ; call site A always passes 1
    li r1, 2
    call f          ; call site B always passes 2
    li r1, 1
    call f
    li r1, 2
    call f
    halt
.endproc
.proc f nargs=1
    ret
.endproc
"""

    def _profile(self, parameter_context):
        program = assemble(self.CTX_SOURCE, name="ctx")
        db = ProfileDatabase()
        observer = ValueProfiler(
            program,
            db,
            targets=[ProfileTarget.PARAMETERS],
            parameter_context=parameter_context,
        )
        run_program(program, observer=observer)
        return db

    def test_merged_profile_is_variant(self):
        db = self._profile(parameter_context=False)
        (site,) = db.sites(SiteKind.PARAMETER)
        assert db.profile_for(site).metrics().inv_top1 == pytest.approx(0.5)

    def test_context_split_is_invariant(self):
        db = self._profile(parameter_context=True)
        sites = db.sites(SiteKind.PARAMETER)
        assert len(sites) == 4  # one per static call site
        for site in sites:
            assert db.profile_for(site).metrics().inv_top1 == 1.0
            assert "@" in site.label

    def test_context_sites_carry_call_pc(self):
        program = assemble(self.CTX_SOURCE, name="ctx")
        db = ProfileDatabase()
        observer = ValueProfiler(
            program, db, targets=[ProfileTarget.PARAMETERS], parameter_context=True
        )
        run_program(program, observer=observer)
        call_pcs = {
            inst.pc for inst in program.instructions if inst.opcode == "jal"
        }
        labels = {int(s.label.split("@")[1]) for s in db.sites(SiteKind.PARAMETER)}
        assert labels <= call_pcs


class TestReturnProfiling:
    RET_SOURCE = """
.text
.proc main nargs=0
    li r1, 5
    call classify
    li r1, 50
    call classify
    halt
.endproc
.proc classify nargs=1
    li r7, 10
    blt r1, r7, small
    li r1, 1
    ret
small:
    li r1, 0
    ret
.endproc
"""

    def test_return_values_recorded_per_procedure(self):
        program = assemble(self.RET_SOURCE, name="r")
        db = ProfileDatabase()
        observer = ValueProfiler(program, db, targets=[ProfileTarget.RETURNS])
        run_program(program, observer=observer)
        sites = db.sites(SiteKind.RETURN)
        assert len(sites) == 1
        (site,) = sites
        assert site.procedure == "classify"
        exact = db.profile_for(site).exact
        assert sorted(exact.histogram.elements()) == [0, 1]

    def test_returns_not_recorded_without_target(self):
        program = assemble(self.RET_SOURCE, name="r")
        db = ProfileDatabase()
        observer = ValueProfiler(program, db, targets=[ProfileTarget.PARAMETERS])
        run_program(program, observer=observer)
        assert not db.sites(SiteKind.RETURN)

    def test_jr_through_other_register_is_not_a_return(self):
        source = """
.data
tbl: .word target
.text
.proc main nargs=0
    la r2, tbl
    ld r3, 0(r2)
    jr r3
target:
    li r1, 9
    halt
.endproc
"""
        program = assemble(source, name="r")
        db = ProfileDatabase()
        observer = ValueProfiler(program, db, targets=[ProfileTarget.RETURNS])
        run_program(program, observer=observer)
        assert not db.sites(SiteKind.RETURN)
