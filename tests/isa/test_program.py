"""Tests for Program structure: procedures, basic blocks, queries."""

import pytest

from repro.errors import MachineError
from repro.isa.assembler import assemble

SOURCE = """
.data
v: .word 1, 2
.text
.proc main nargs=0
    la r1, v
    ld r2, 0(r1)
    beqz r2, skip
    addi r2, r2, 1
skip:
    call f
    out r2
    halt
.endproc
.proc f nargs=1
    st r1, 1(r0)
    ret
.endproc
"""


@pytest.fixture(scope="module")
def program():
    return assemble(SOURCE, name="p")


class TestProcedures:
    def test_procedure_at(self, program):
        main = program.procedures["main"]
        assert program.procedure_at(main.start).name == "main"
        assert program.procedure_at(main.end - 1).name == "main"

    def test_procedure_at_outside(self, program):
        assert program.procedure_at(10_000) is None

    def test_contains(self, program):
        f = program.procedures["f"]
        assert f.start in f
        assert f.end not in f

    def test_size(self, program):
        f = program.procedures["f"]
        assert f.size == f.end - f.start

    def test_procedure_of_label_unknown_raises(self, program):
        with pytest.raises(MachineError):
            program.procedure_of_label("nope")


class TestBasicBlocks:
    def test_blocks_partition_code(self, program):
        blocks = program.basic_blocks()
        covered = sorted((b.start, b.end) for b in blocks)
        # Contiguous, non-overlapping, covering every pc.
        position = 0
        for start, end in covered:
            assert start == position
            position = end
        assert position == len(program)

    def test_branch_targets_start_blocks(self, program):
        blocks = program.basic_blocks()
        skip_pc = program.labels["skip"]
        assert any(b.start == skip_pc for b in blocks)

    def test_blocks_know_their_procedure(self, program):
        blocks = program.basic_blocks()
        f = program.procedures["f"]
        f_blocks = [b for b in blocks if b.start >= f.start and b.end <= f.end]
        assert f_blocks and all(b.procedure == "f" for b in f_blocks)

    def test_empty_program(self):
        empty = assemble(".text\n")
        assert empty.basic_blocks() == []


class TestStaticCounts:
    def test_static_load_count(self, program):
        assert program.static_load_count() == 1

    def test_static_defining_count(self, program):
        # la, ld, addi, and st's companions... count defining opcodes directly
        expected = sum(1 for inst in program.instructions if inst.info.defines_register)
        assert program.static_defining_count() == expected

    def test_len(self, program):
        assert len(program) == len(program.instructions)

    def test_disassemble_mentions_all_procedures(self, program):
        listing = program.disassemble()
        assert "main:" in listing and "f:" in listing
