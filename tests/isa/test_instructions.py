"""Tests for ISA metadata and instruction rendering."""

from repro.isa.instructions import (
    Format,
    InsnClass,
    Instruction,
    OPCODES,
    opcode_info,
    to_signed64,
)


class TestOpcodeTable:
    def test_loads_define_registers(self):
        assert OPCODES["ld"].defines_register
        assert OPCODES["ld"].is_load

    def test_stores_do_not_define(self):
        assert not OPCODES["st"].defines_register
        assert OPCODES["st"].is_store

    def test_branches_flagged(self):
        for mnemonic in ("beq", "bne", "blt", "bge", "ble", "bgt", "j", "jal", "jr", "jalr"):
            assert OPCODES[mnemonic].is_branch, mnemonic

    def test_every_class_represented(self):
        classes = {info.insn_class for info in OPCODES.values()}
        assert classes == set(InsnClass)

    def test_defining_instructions_have_destination_formats(self):
        # Every register-defining opcode must encode a destination.
        for info in OPCODES.values():
            if info.defines_register:
                assert info.fmt in (
                    Format.RRR,
                    Format.RRI,
                    Format.RI,
                    Format.RL,
                    Format.RR,
                    Format.R,
                    Format.MEM,
                ), info.mnemonic

    def test_opcode_info_lookup(self):
        assert opcode_info("add") is OPCODES["add"]
        assert opcode_info("nosuch") is None

    def test_all_opcodes_documented(self):
        assert all(info.description for info in OPCODES.values())


class TestToSigned64:
    def test_identity_in_range(self):
        assert to_signed64(5) == 5
        assert to_signed64(-5) == -5

    def test_wraps_positive_overflow(self):
        assert to_signed64(2**63) == -(2**63)

    def test_wraps_negative_overflow(self):
        assert to_signed64(-(2**63) - 1) == 2**63 - 1

    def test_masks_high_bits(self):
        assert to_signed64(2**64 + 7) == 7

    def test_extremes(self):
        assert to_signed64(2**63 - 1) == 2**63 - 1
        assert to_signed64(-(2**63)) == -(2**63)


class TestRendering:
    def test_rrr(self):
        inst = Instruction("add", rd=1, ra=2, rb=3)
        assert inst.render() == "add r1, r2, r3"

    def test_rri(self):
        assert Instruction("addi", rd=1, ra=2, imm=-4).render() == "addi r1, r2, -4"

    def test_mem(self):
        assert Instruction("ld", rd=1, ra=2, imm=8).render() == "ld r1, 8(r2)"

    def test_branch_shows_target(self):
        assert Instruction("beq", ra=1, rb=2, target=9).render() == "beq r1, r2, @9"

    def test_bare(self):
        assert Instruction("halt").render() == "halt"

    def test_str_includes_pc(self):
        inst = Instruction("nop", pc=12)
        assert "12" in str(inst)
