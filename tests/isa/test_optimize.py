"""Tests for ISA-level code specialization."""

import pytest

from repro.errors import MachineError
from repro.isa.assembler import assemble
from repro.isa.machine import run_program
from repro.isa.optimize import (
    patch_call_site,
    specialize_procedure,
    written_registers,
)

SOURCE = """
.program opt
.text
.proc main nargs=0
    in  r1              ; x
    li  r2, 4           ; scale (the "invariant" argument)
    call transform
    out r1
    in  r1
    li  r2, 3
    call transform
    out r1
    halt
.endproc
.proc transform nargs=2
    ; r1 = x, r2 = scale: returns x*scale + scale - 1, with a
    ; scale-dependent branch
    mul r10, r1, r2
    li  r11, 1
    sub r12, r2, r11
    add r1, r10, r12
    blt r2, r11, neg
    ret
neg:
    li r1, 0
    ret
.endproc
"""


def build():
    return assemble(SOURCE, name="opt")


class TestWrittenRegisters:
    def test_transform_writes(self):
        program = build()
        written = written_registers(program, program.procedures["transform"])
        assert {1, 10, 11, 12} <= written
        assert 2 not in written

    def test_jalr_destination_counts(self):
        source = """
.text
.proc main nargs=0
    halt
.endproc
.proc f nargs=0
    jalr r9, r1
    ret
.endproc
"""
        program = assemble(source)
        assert 9 in written_registers(program, program.procedures["f"])


class TestSpecializeProcedure:
    def test_variant_appended(self):
        program = build()
        specialized, report = specialize_procedure(program, "transform", {2: 4})
        assert "transform__spec" in specialized.procedures
        assert report.entry == len(program.instructions)
        assert len(specialized.instructions) > len(program.instructions)

    def test_original_program_untouched(self):
        program = build()
        before = [inst.render() for inst in program.instructions]
        specialize_procedure(program, "transform", {2: 4})
        assert [inst.render() for inst in program.instructions] == before

    def test_rewrites_happen(self):
        program = build()
        _, report = specialize_procedure(program, "transform", {2: 4})
        # mul x*4 -> slli (strength reduction); sub 4-1 -> folds;
        # blt 4<1 -> branch fold to nop.
        assert report.strength_reductions >= 1
        assert report.folds >= 1
        assert report.branch_folds >= 1
        assert report.cycle_gain > 0

    def test_binding_written_register_rejected(self):
        program = build()
        with pytest.raises(MachineError):
            specialize_procedure(program, "transform", {1: 5})

    def test_binding_r0_rejected(self):
        program = build()
        with pytest.raises(MachineError):
            specialize_procedure(program, "transform", {0: 0})

    def test_empty_bindings_rejected(self):
        program = build()
        with pytest.raises(MachineError):
            specialize_procedure(program, "transform", {})

    def test_unknown_procedure_rejected(self):
        program = build()
        with pytest.raises(MachineError):
            specialize_procedure(program, "nothere", {2: 4})

    def test_duplicate_variant_rejected(self):
        program = build()
        specialized, _ = specialize_procedure(program, "transform", {2: 4})
        with pytest.raises(MachineError):
            specialize_procedure(specialized, "transform", {2: 4})


class TestSemanticsPreserved:
    def _outputs(self, program, inputs):
        return run_program(program, input_values=inputs).output

    def test_matching_guard_produces_same_results(self):
        program = build()
        specialized, _ = specialize_procedure(program, "transform", {2: 4})
        call_pc = next(
            inst.pc
            for inst in specialized.instructions
            if inst.opcode == "jal"
            and inst.target == specialized.procedures["transform"].start
        )
        patch_call_site(specialized, call_pc, "transform__spec")
        for inputs in ([7, 9], [0, 0], [-5, 100]):
            assert self._outputs(specialized, inputs) == self._outputs(program, inputs)

    def test_guard_falls_back_on_mismatch(self):
        # Patch the SECOND call site (which passes scale=3, not the
        # bound 4): the guard must route every call to the general code.
        program = build()
        specialized, _ = specialize_procedure(program, "transform", {2: 4})
        call_pcs = [
            inst.pc
            for inst in specialized.instructions
            if inst.opcode == "jal"
            and inst.target == specialized.procedures["transform"].start
        ]
        patch_call_site(specialized, call_pcs[1], "transform__spec")
        for inputs in ([3, 11], [1, 1]):
            assert self._outputs(specialized, inputs) == self._outputs(program, inputs)

    def test_whole_workload_bit_identical(self):
        from repro.workloads.registry import get_workload

        workload = get_workload("ijpeg")
        dataset = workload.dataset("train", scale=0.1)
        program = workload.program()
        specialized, _ = specialize_procedure(program, "dct1d", {3: 1, 4: 1}, "dct1d__rows")
        specialized, _ = specialize_procedure(specialized, "dct1d", {3: 8, 4: 8}, "dct1d__cols")
        call_pcs = [
            inst.pc
            for inst in specialized.instructions[: len(program.instructions)]
            if inst.opcode == "jal"
            and inst.target == specialized.procedures["dct1d"].start
        ]
        patch_call_site(specialized, call_pcs[0], "dct1d__rows")
        patch_call_site(specialized, call_pcs[1], "dct1d__cols")
        base = run_program(program, input_values=dataset.values)
        spec = run_program(specialized, input_values=dataset.values)
        assert spec.output == base.output
        assert spec.cycles < base.cycles  # strength-reduced muls

    def test_specialized_variant_costs_fewer_cycles_per_call(self):
        program = build()
        specialized, report = specialize_procedure(program, "transform", {2: 4})
        assert report.cycle_gain >= 3  # mul(4) -> slli(1) alone saves 3


class TestPatchCallSite:
    def test_patch_rejects_non_call(self):
        program = build()
        specialized, _ = specialize_procedure(program, "transform", {2: 4})
        with pytest.raises(MachineError):
            patch_call_site(specialized, 0, "transform__spec")  # 'in', not jal

    def test_patch_rejects_unknown_variant(self):
        program = build()
        specialized, _ = specialize_procedure(program, "transform", {2: 4})
        call_pc = next(
            inst.pc for inst in specialized.instructions if inst.opcode == "jal"
        )
        with pytest.raises(MachineError):
            patch_call_site(specialized, call_pc, "missing")

    def test_patch_out_of_range(self):
        program = build()
        with pytest.raises(MachineError):
            patch_call_site(program, 10_000, "transform")
