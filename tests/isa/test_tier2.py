"""Tier-2 engine lifecycle tests: quicken, guard, deopt, despecialize.

The differential suite (``tests/isa/test_engine_differential.py``)
proves the tier-2 engine is bit-identical to the reference loop on
random programs; these tests pin the *lifecycle* — that specific
programs actually drive the quicken → guard-fail → deopt → requicken →
despecialize transitions, that budget exhaustion inside a
superinstruction is exact, and that profiles stay byte-identical
across all three engines.
"""

import json

import pytest

from repro.core.profile import ProfileDatabase
from repro.errors import MachineError
from repro.isa.assembler import assemble
from repro.isa.instrument import ALL_TARGETS, ProfileTarget, ValueProfiler
from repro.isa.machine import Machine
from repro.isa.tier2 import Tier2Config


def _hot_config(**overrides) -> Tier2Config:
    kwargs = dict(hot_threshold=2, fail_limit=2, requicken_budget=1)
    kwargs.update(overrides)
    return Tier2Config(**kwargs)


# A loop whose hot block multiplies by ``r8``; r8 is invariant long
# enough to quicken with a guarded binding, then the program itself
# perturbs it twice.  First perturbation: guard failures -> deopts ->
# requicken with the new value.  Second perturbation: the requicken
# budget is spent, so the block despecializes to an unguarded variant.
_PERTURB = """
.program perturb
.text
.proc main nargs=0
    li r8, 5
    li r9, 0
    li r10, 120
outer:
    mul r11, r8, r8
    add r9, r9, r11
    subi r10, r10, 1
    seqi r12, r10, 80
    seqi r13, r10, 40
    or r12, r12, r13
    beqz r12, skip
    add r8, r8, r10
skip:
    bnez r10, outer
    out r9
    halt
.endproc
"""


def _outcome(source: str, engine: str, budget: int = 1_000_000):
    program = assemble(source)
    database = ProfileDatabase(name="t2")
    profiler = ValueProfiler(program, database, targets=ALL_TARGETS, buffered=True)
    config = _hot_config() if engine == "tier2" else None
    machine = Machine(program, observer=profiler, engine=engine, tier2_config=config)
    try:
        result = machine.run(max_instructions=budget)
        outcome = ("ok", result)
    except MachineError as error:
        outcome = ("error", str(error))
    return outcome, machine, database


def test_guard_failure_deopts_and_requickens():
    outcome, machine, _ = _outcome(_PERTURB, "tier2")
    simple_outcome, simple_machine, _ = _outcome(_PERTURB, "simple")
    assert outcome == simple_outcome
    assert list(machine.output) == list(simple_machine.output)
    stats = machine.tier2_stats()
    assert stats["quickened"] >= 1
    assert stats["deopts"] >= 1, "perturbed operand never failed a guard"
    assert stats["requickened"] >= 1, "failed block never requickened"
    assert stats["despecialized"] >= 1, (
        "second perturbation should exhaust the requicken budget"
    )


def test_guard_hits_counted():
    _, machine, _ = _outcome(_PERTURB, "tier2")
    stats = machine.tier2_stats()
    # The stable phases re-enter the guarded superinstruction many
    # times; each successful entry counts as a guard hit.
    assert stats["guard_hits"] > stats["deopts"]


def test_budget_exhaustion_inside_superinstruction():
    """The budget must be exact even when it expires mid-trace.

    The spin loop quickens into a loop-closed superinstruction that
    executes many instructions per dispatch; a budget that is not a
    multiple of the trace length must still stop after exactly the
    budgeted number of instructions with state identical to simple.
    """
    source = """
    .program spin
    .text
    .proc main nargs=0
        li r8, 0
    loop:
        addi r8, r8, 1
        addi r9, r9, 2
        xori r10, r8, 3
        j loop
    .endproc
    """
    program = assemble(source)
    for budget in (37, 100, 101, 1003):
        machines = {}
        for engine in ("simple", "tier2"):
            config = _hot_config() if engine == "tier2" else None
            machine = Machine(program, engine=engine, tier2_config=config)
            with pytest.raises(MachineError, match="budget"):
                machine.run(max_instructions=budget)
            machines[engine] = machine
        simple, tier2 = machines["simple"], machines["tier2"]
        assert tier2.instructions_executed == budget
        assert tier2.instructions_executed == simple.instructions_executed
        assert list(tier2.registers) == list(simple.registers)
        assert tier2.pc == simple.pc
        assert tier2.cycles == simple.cycles


def test_profiles_byte_identical_across_engines():
    dumps = {}
    for engine in ("simple", "threaded", "tier2"):
        _, _, database = _outcome(_PERTURB, engine)
        dumps[engine] = json.dumps(database.to_json(), sort_keys=True)
    assert dumps["threaded"] == dumps["simple"]
    assert dumps["tier2"] == dumps["simple"]


def test_preheat_seeds_thresholds_from_profile():
    """A prior profile lets the tier skip most of its online warm-up."""
    program = assemble(_PERTURB)
    database = ProfileDatabase(name="t2")
    profiler = ValueProfiler(
        program,
        database,
        targets=(ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS),
        buffered=True,
    )
    machine = Machine(program, observer=profiler, engine="threaded")
    machine.run()

    fresh = Machine(program, engine="tier2", tier2_config=_hot_config())
    seeded = fresh.tier2_preheat(database)
    assert seeded >= 1, "hot profiled blocks should preheat"
    fresh.run()
    assert fresh.tier2_stats()["quickened"] >= 1


def test_stats_shape():
    _, machine, _ = _outcome(_PERTURB, "tier2")
    stats = machine.tier2_stats()
    for key in (
        "engine",
        "candidate_blocks",
        "quickened",
        "requickened",
        "despecialized",
        "deopts",
        "guard_hits",
        "guarded_blocks",
        "fused_instructions",
    ):
        assert key in stats, key
    assert stats["engine"] == "tier2"
    # Off the tier-2 engine there are no stats.
    other = Machine(assemble(_PERTURB), engine="threaded")
    assert other.tier2_stats() is None
