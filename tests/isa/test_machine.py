"""Tests for the VPA interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.isa.assembler import assemble
from repro.isa.instructions import to_signed64
from repro.isa.machine import Machine, run_program


def run_body(body: str, data: str = "", input_values=(), **kwargs):
    sections = f".data\n{data}\n" if data else ""
    source = f"{sections}.text\n.proc main nargs=0\n{body}\nhalt\n.endproc\n"
    return run_program(assemble(source), input_values=input_values, **kwargs)


class TestArithmetic:
    def test_add_sub(self):
        result = run_body("li r1, 7\nli r2, 3\nadd r3, r1, r2\nsub r4, r1, r2\nout r3\nout r4")
        assert result.output == [10, 4]

    def test_immediates(self):
        result = run_body("li r1, 10\naddi r2, r1, 5\nsubi r3, r1, 5\nmuli r4, r1, 3\nout r2\nout r3\nout r4")
        assert result.output == [15, 5, 30]

    def test_mul(self):
        result = run_body("li r1, -4\nli r2, 6\nmul r3, r1, r2\nout r3")
        assert result.output == [-24]

    def test_div_truncates_toward_zero(self):
        result = run_body(
            "li r1, 7\nli r2, 2\ndiv r3, r1, r2\nout r3\n"
            "li r1, -7\ndiv r3, r1, r2\nout r3"
        )
        assert result.output == [3, -3]

    def test_rem_sign_follows_dividend(self):
        result = run_body(
            "li r1, 7\nli r2, 3\nrem r3, r1, r2\nout r3\n"
            "li r1, -7\nrem r3, r1, r2\nout r3"
        )
        assert result.output == [1, -1]

    def test_division_by_zero_faults(self):
        with pytest.raises(MachineError):
            run_body("li r1, 1\nli r2, 0\ndiv r3, r1, r2")

    def test_wraparound_64bit(self):
        result = run_body(f"li r1, {2**63 - 1}\naddi r2, r1, 1\nout r2")
        assert result.output == [-(2**63)]

    def test_bitwise(self):
        result = run_body(
            "li r1, 0b1100\nli r2, 0b1010\n"
            "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\n"
            "out r3\nout r4\nout r5"
        )
        assert result.output == [0b1000, 0b1110, 0b0110]

    def test_shifts(self):
        result = run_body(
            "li r1, -8\nsrai r2, r1, 1\nout r2\n"
            "li r3, 8\nslli r4, r3, 2\nout r4\n"
            "li r5, -1\nsrli r6, r5, 60\nout r6"
        )
        assert result.output == [-4, 32, 15]

    def test_compare_sets(self):
        result = run_body(
            "li r1, 3\nli r2, 5\n"
            "slt r3, r1, r2\nseq r4, r1, r2\nsne r5, r1, r2\n"
            "slti r6, r1, 4\nseqi r7, r1, 3\nsnei r8, r1, 3\n"
            "out r3\nout r4\nout r5\nout r6\nout r7\nout r8"
        )
        assert result.output == [1, 0, 1, 1, 1, 0]


class TestRegisterZero:
    def test_r0_reads_zero(self):
        result = run_body("li r1, 5\nadd r2, zero, zero\nout r2")
        assert result.output == [0]

    def test_writes_to_r0_discarded(self):
        result = run_body("li r0, 99\nout r0")
        assert result.output == [0]

    def test_load_into_r0_discarded(self):
        result = run_body("la r1, v\nld r0, 0(r1)\nout r0", data="v: .word 42")
        assert result.output == [0]


class TestMemory:
    def test_load_store_roundtrip(self):
        result = run_body(
            "la r1, buf\nli r2, 77\nst r2, 3(r1)\nld r3, 3(r1)\nout r3",
            data="buf: .space 8",
        )
        assert result.output == [77]

    def test_data_image_loaded(self):
        result = run_body("la r1, v\nld r2, 1(r1)\nout r2", data="v: .word 10, 20")
        assert result.output == [20]

    def test_out_of_range_load_faults(self):
        with pytest.raises(MachineError):
            run_body("li r1, -5\nld r2, 0(r1)")

    def test_out_of_range_store_faults(self):
        with pytest.raises(MachineError):
            run_body(f"li r1, {1 << 22}\nst r1, 0(r1)", memory_words=1024)

    def test_stack_push_pop(self):
        result = run_body("li r1, 11\npush r1\nli r1, 22\npop r2\nout r2")
        assert result.output == [11]

    def test_data_image_too_big_rejected(self):
        program = assemble(".data\nbig: .space 100\n.text\n.proc main nargs=0\nhalt\n.endproc\n")
        with pytest.raises(MachineError):
            Machine(program, memory_words=50)


class TestControlFlow:
    def test_branch_taken_and_not_taken(self):
        result = run_body(
            "li r1, 1\nli r2, 1\nbeq r1, r2, yes\nli r3, 0\nj end\nyes:\nli r3, 9\nend:\nout r3"
        )
        assert result.output == [9]

    def test_all_branch_conditions(self):
        body = """
    li r1, 2
    li r2, 5
    li r9, 0
    blt r1, r2, a
    j end
a:  bgt r2, r1, b
    j end
b:  ble r1, r1, c
    j end
c:  bge r2, r2, d
    j end
d:  bne r1, r2, e
    j end
e:  li r9, 1
end:
    out r9
"""
        assert run_body(body).output == [1]

    def test_loop(self):
        result = run_body(
            "li r1, 0\nli r2, 5\nloop:\nbeqz r2, done\nadd r1, r1, r2\ndec r2\nj loop\ndone:\nout r1"
        )
        assert result.output == [15]

    def test_call_and_return(self):
        source = """
.text
.proc main nargs=0
    li r1, 20
    call double
    out r1
    halt
.endproc
.proc double nargs=1
    add r1, r1, r1
    ret
.endproc
"""
        assert run_program(assemble(source)).output == [40]

    def test_indirect_jump_through_table(self):
        source = """
.data
table: .word t0, t1
.text
.proc main nargs=0
    la r1, table
    ld r2, 1(r1)
    jr r2
t0:
    li r3, 0
    j end
t1:
    li r3, 1
end:
    out r3
    halt
.endproc
"""
        assert run_program(assemble(source)).output == [1]

    def test_jalr_records_link(self):
        source = """
.data
fptr: .word f
.text
.proc main nargs=0
    la r1, fptr
    ld r2, 0(r1)
    jalr r10, r2
    out r1
    halt
.endproc
.proc f nargs=0
    li r1, 5
    jr r10
.endproc
"""
        assert run_program(assemble(source)).output == [5]

    def test_pc_out_of_range_faults(self):
        # Jump via jr to an invalid pc.
        with pytest.raises(MachineError):
            run_body("li r1, 12345\njr r1")

    def test_instruction_budget(self):
        with pytest.raises(MachineError):
            run_body("spin:\nj spin", max_instructions=1000)


class TestIO:
    def test_input_stream(self):
        result = run_body("in r1\nin r2\nadd r3, r1, r2\nout r3", input_values=[4, 6])
        assert result.output == [10]

    def test_input_exhausted_reads_zero(self):
        result = run_body("in r1\nin r2\nout r2", input_values=[9])
        assert result.output == [0]

    def test_input_wraps_to_signed(self):
        machine_result = run_body("in r1\nout r1", input_values=[2**64 - 1])
        assert machine_result.output == [-1]


class TestCounters:
    def test_dynamic_counts(self):
        result = run_body(
            "la r1, v\nld r2, 0(r1)\nst r2, 1(r1)\nout r2",
            data="v: .space 2",
        )
        assert result.dynamic_loads == 1
        assert result.dynamic_stores == 1

    def test_procedure_call_counts(self):
        source = """
.text
.proc main nargs=0
    call f
    call f
    halt
.endproc
.proc f nargs=0
    ret
.endproc
"""
        result = run_program(assemble(source))
        assert result.procedure_calls == {"f": 2}
        assert result.dynamic_calls == 2

    def test_instructions_executed_counted(self):
        result = run_body("nop\nnop")
        assert result.instructions_executed == 3  # 2 nops + halt


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=-(2**32), max_value=2**32),
    st.integers(min_value=-(2**32), max_value=2**32),
)
def test_property_add_matches_wrapped_python(a, b):
    result = run_body(f"li r1, {a}\nli r2, {b}\nadd r3, r1, r2\nout r3")
    assert result.output == [to_signed64(a + b)]


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=-(2**30), max_value=2**30),
    st.integers(min_value=1, max_value=2**20),
)
def test_property_div_rem_identity(a, b):
    result = run_body(
        f"li r1, {a}\nli r2, {b}\ndiv r3, r1, r2\nrem r4, r1, r2\n"
        "mul r5, r3, r2\nadd r5, r5, r4\nout r5"
    )
    assert result.output == [to_signed64(a)]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20))
def test_property_memory_roundtrip(values):
    stores = "\n".join(f"li r2, {v}\nst r2, {i}(r1)" for i, v in enumerate(values))
    loads = "\n".join(f"ld r3, {i}(r1)\nout r3" for i in range(len(values)))
    result = run_body(f"la r1, buf\n{stores}\n{loads}", data="buf: .space 32")
    assert result.output == values
