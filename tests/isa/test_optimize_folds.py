"""Fine-grained tests of the binary specializer's rewrite rules."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.machine import run_program
from repro.isa.optimize import patch_call_site, specialize_procedure


def specialize_body(body: str, bindings, nargs=2, call_setup="li r2, 0\nli r3, 0"):
    """Wrap ``body`` in a callee, specialize it, return variant opcodes
    and a checker that compares outputs on the patched program."""
    source = f"""
.text
.proc main nargs=0
    in r1
    {call_setup}
    call callee
    out r1
    halt
.endproc
.proc callee nargs={nargs}
{body}
    ret
.endproc
"""
    program = assemble(source)
    specialized, report = specialize_procedure(program, "callee", bindings)
    variant = specialized.procedures["callee__spec"]
    rendered = [
        specialized.instructions[pc].render() for pc in range(variant.start, variant.end)
    ]
    return program, specialized, report, rendered


class TestImmediateForms:
    def test_add_with_known_rhs_becomes_addi(self):
        _, _, report, rendered = specialize_body(
            "    add r1, r1, r2", {2: 9}
        )
        assert any(r == "addi r1, r1, 9" for r in rendered)
        assert report.folds >= 1

    def test_add_with_known_lhs_commutes(self):
        _, _, _, rendered = specialize_body("    add r1, r2, r1", {2: 9})
        assert any(r == "addi r1, r1, 9" for r in rendered)

    def test_sub_with_known_rhs_becomes_subi(self):
        _, _, _, rendered = specialize_body("    sub r1, r1, r2", {2: 4})
        assert any(r == "subi r1, r1, 4" for r in rendered)

    def test_sub_with_known_lhs_not_rewritten(self):
        # No reverse-subtract immediate form exists; must stay RRR.
        _, _, _, rendered = specialize_body("    sub r1, r2, r1", {2: 4})
        assert any(r.startswith("sub r1, r2, r1") for r in rendered)

    def test_shift_with_known_amount(self):
        _, _, _, rendered = specialize_body("    sll r1, r1, r2", {2: 3})
        assert any(r == "slli r1, r1, 3" for r in rendered)

    def test_compare_with_known_rhs(self):
        _, _, _, rendered = specialize_body("    slt r1, r1, r2", {2: 100})
        assert any(r == "slti r1, r1, 100" for r in rendered)


class TestStrengthReduction:
    def test_mul_by_one_becomes_mov(self):
        _, _, report, rendered = specialize_body("    mul r1, r1, r2", {2: 1})
        assert any(r == "mov r1, r1" for r in rendered)
        assert report.strength_reductions == 1

    def test_mul_by_zero_becomes_li(self):
        _, _, _, rendered = specialize_body("    mul r1, r1, r2", {2: 0})
        assert any(r == "li r1, 0" for r in rendered)

    def test_mul_by_power_of_two_becomes_shift(self):
        _, _, _, rendered = specialize_body("    mul r1, r1, r2", {2: 16})
        assert any(r == "slli r1, r1, 4" for r in rendered)

    def test_mul_by_other_constant_becomes_muli(self):
        _, _, _, rendered = specialize_body("    mul r1, r1, r2", {2: 7})
        assert any(r == "muli r1, r1, 7" for r in rendered)

    def test_known_lhs_multiply_commutes(self):
        _, _, _, rendered = specialize_body("    mul r1, r2, r1", {2: 8})
        assert any(r == "slli r1, r1, 3" for r in rendered)


class TestFullConstantFolding:
    def test_rri_on_constant_folds_to_li(self):
        _, _, _, rendered = specialize_body("    addi r1, r2, 5", {2: 10})
        assert any(r == "li r1, 15" for r in rendered)

    def test_rrr_both_known_folds(self):
        _, _, _, rendered = specialize_body("    add r1, r2, r3", {2: 10, 3: 20})
        assert any(r == "li r1, 30" for r in rendered)

    def test_mov_of_constant_folds(self):
        _, _, _, rendered = specialize_body("    mov r1, r2", {2: 77})
        assert any(r == "li r1, 77" for r in rendered)

    def test_division_by_zero_binding_not_folded(self):
        # divi by bound zero must keep the runtime fault, not crash the
        # specializer or silently produce a value.
        program, specialized, report, rendered = specialize_body(
            "    div r1, r1, r2", {2: 0}
        )
        assert any(r.startswith("div r1, r1, r2") for r in rendered)

    def test_local_constant_propagation_cascades(self):
        # li r9, 4 inside the body becomes a local constant; the
        # following add with the bound register then fully folds.
        body = """    li r9, 4
    add r1, r9, r2"""
        _, _, _, rendered = specialize_body(body, {2: 6})
        assert any(r == "li r1, 10" for r in rendered)

    def test_local_constants_reset_at_block_boundaries(self):
        # After a label that is a branch target, the r9 constant from
        # before must NOT be trusted (another path may reach it).
        body = """    li r9, 4
    beqz r1, skip
    li r9, 5
skip:
    add r1, r9, r2"""
        program, specialized, report, rendered = specialize_body(body, {2: 6})
        # The add must not fold to a constant (r9 is 4 or 5 here).
        assert not any(r in ("li r1, 10", "li r1, 11") for r in rendered)
        # Semantics check on both paths:
        call_pc = next(i.pc for i in specialized.instructions if i.opcode == "jal")
        patch_call_site(specialized, call_pc, "callee__spec")
        for x in (0, 7):
            base = run_program(program, input_values=[x])
            spec = run_program(specialized, input_values=[x])
            assert base.output == spec.output


class TestGuardLayout:
    def test_multi_binding_guard_checks_all(self):
        program, specialized, _, _ = specialize_body(
            "    add r1, r2, r3", {2: 1, 3: 2}, call_setup="li r2, 1\nli r3, 2"
        )
        variant = specialized.procedures["callee__spec"]
        guard_ops = [
            specialized.instructions[pc].opcode
            for pc in range(variant.start, variant.start + 8)
        ]
        assert guard_ops.count("snei") == 2
        assert guard_ops.count("bne") == 2

    def test_guard_mismatch_produces_general_result(self):
        program, specialized, _, _ = specialize_body(
            "    add r1, r1, r2", {2: 999}, call_setup="li r2, 5\nli r3, 0"
        )
        call_pc = next(i.pc for i in specialized.instructions if i.opcode == "jal")
        patch_call_site(specialized, call_pc, "callee__spec")
        base = run_program(program, input_values=[10])
        spec = run_program(specialized, input_values=[10])
        assert base.output == spec.output == [15]
