"""Tests for the VPA assembler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssemblerError
from repro.isa.assembler import assemble


def asm(body: str, data: str = "") -> str:
    """Wrap a code body in a minimal program skeleton."""
    sections = ""
    if data:
        sections += f".data\n{data}\n"
    return f"{sections}.text\n.proc main nargs=0\n{body}\nhalt\n.endproc\n"


class TestBasics:
    def test_empty_main(self):
        program = assemble(asm(""))
        assert program.instructions[-1].opcode == "halt"
        assert "main" in program.procedures

    def test_program_name_directive(self):
        program = assemble(".program myprog\n" + asm("nop"))
        assert program.name == "myprog"

    def test_explicit_name_overrides(self):
        program = assemble(".program inner\n" + asm("nop"), name="outer")
        assert program.name == "outer"

    def test_comments_stripped(self):
        program = assemble(asm("nop ; comment\nnop # another"))
        assert [i.opcode for i in program.instructions[:2]] == ["nop", "nop"]

    def test_entry_is_main(self):
        source = """
.text
.proc helper nargs=0
    nop
    ret
.endproc
.proc main nargs=0
    halt
.endproc
"""
        program = assemble(source)
        assert program.entry == program.procedures["main"].start


class TestOperands:
    def test_register_aliases(self):
        program = assemble(asm("mov sp, lr\nmov r1, zero"))
        mov = program.instructions[0]
        assert mov.rd == 29 and mov.ra == 31
        assert program.instructions[1].ra == 0

    def test_hex_and_negative_immediates(self):
        program = assemble(asm("li r1, 0xFF\nli r2, -7"))
        assert program.instructions[0].imm == 255
        assert program.instructions[1].imm == -7

    def test_equ_constants(self):
        program = assemble(".equ SIZE 64\n" + asm("li r1, SIZE\naddi r2, r1, SIZE"))
        assert program.instructions[0].imm == 64
        assert program.instructions[1].imm == 64

    def test_memory_operand(self):
        program = assemble(asm("ld r1, 4(r2)\nst r3, -2(r4)"))
        ld = program.instructions[0]
        assert (ld.rd, ld.imm, ld.ra) == (1, 4, 2)
        st = program.instructions[1]
        assert (st.rd, st.imm, st.ra) == (3, -2, 4)

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(asm("mov r99, r1"))

    def test_bad_integer_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(asm("li r1, banana"))

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(asm("add r1, r2"))

    def test_error_carries_line_number(self):
        source = ".text\n.proc main nargs=0\n    nop\n    frobnicate r1\n.endproc\n"
        with pytest.raises(AssemblerError) as excinfo:
            assemble(source)
        assert "line 4" in str(excinfo.value)


class TestLabels:
    def test_forward_branch(self):
        program = assemble(asm("beq r1, r2, done\nnop\ndone:\nnop"))
        assert program.instructions[0].target == 2

    def test_backward_jump(self):
        program = assemble(asm("top:\nnop\nj top"))
        assert program.instructions[1].target == 0

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(asm("j nowhere"))

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(asm("dup:\nnop\ndup:\nnop"))

    def test_label_and_instruction_on_one_line(self):
        program = assemble(asm("here: nop\nj here"))
        assert program.instructions[1].target == 0


class TestData:
    def test_word_values(self):
        program = assemble(asm("nop", data="vals: .word 1, 2, 3"))
        assert program.data_image[:3] == [1, 2, 3]

    def test_space_reserves_zeroed_words(self):
        program = assemble(asm("nop", data="buf: .space 5\ntail: .word 9"))
        assert program.data_image == [0, 0, 0, 0, 0, 9]
        assert program.data_symbols["tail"] == 5

    def test_la_resolves_data_symbol(self):
        program = assemble(asm("la r1, buf", data="pad: .word 1, 2\nbuf: .word 3"))
        assert program.instructions[0].imm == 2

    def test_word_can_reference_code_label(self):
        source = """
.data
handlers: .word entry
.text
.proc main nargs=0
entry:
    halt
.endproc
"""
        program = assemble(source)
        assert program.data_image[0] == program.labels["entry"]

    def test_word_can_reference_data_symbol(self):
        program = assemble(asm("nop", data="a: .word 1\nptr: .word a"))
        assert program.data_image[1] == 0

    def test_word_outside_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n.word 1\n")

    def test_equ_in_word(self):
        program = assemble(".equ X 42\n" + asm("nop", data="v: .word X"))
        assert program.data_image[0] == 42


class TestProcedures:
    def test_nargs_recorded(self):
        source = """
.text
.proc main nargs=0
    halt
.endproc
.proc f nargs=3
    ret
.endproc
"""
        program = assemble(source)
        assert program.procedures["f"].nargs == 3

    def test_unclosed_proc_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n.proc main nargs=0\nnop\n")

    def test_nested_proc_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n.proc a nargs=0\n.proc b nargs=0\n.endproc\n.endproc\n")

    def test_endproc_without_proc_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n.endproc\n")

    def test_instructions_tagged_with_procedure(self):
        source = """
.text
.proc main nargs=0
    nop
    halt
.endproc
.proc f nargs=0
    ret
.endproc
"""
        program = assemble(source)
        assert program.instructions[0].procedure == "main"
        assert program.instructions[2].procedure == "f"

    def test_unknown_proc_attribute_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n.proc main wibble=2\n.endproc\n")


class TestPseudoInstructions:
    def test_ret_expands_to_jr_lr(self):
        program = assemble(asm("ret"))
        inst = program.instructions[0]
        assert inst.opcode == "jr" and inst.rd == 31

    def test_call_expands_to_jal(self):
        source = """
.text
.proc main nargs=0
    call f
    halt
.endproc
.proc f nargs=0
    ret
.endproc
"""
        program = assemble(source)
        assert program.instructions[0].opcode == "jal"
        assert program.instructions[0].target == program.procedures["f"].start

    def test_push_pop_expand_to_two_instructions(self):
        program = assemble(asm("push r5\npop r5"))
        opcodes = [i.opcode for i in program.instructions[:4]]
        assert opcodes == ["subi", "st", "ld", "addi"]

    def test_push_keeps_labels_correct(self):
        # A label after a pseudo must account for its expansion size.
        program = assemble(asm("push r1\ntarget:\nnop\nj target"))
        assert program.instructions[3].target == 2

    def test_beqz_bnez(self):
        program = assemble(asm("beqz r3, out\nbnez r4, out\nout:\nnop"))
        beq, bne = program.instructions[:2]
        assert beq.opcode == "beq" and beq.rb == 0
        assert bne.opcode == "bne" and bne.rb == 0

    def test_inc_dec(self):
        program = assemble(asm("inc r9\ndec r9"))
        inc, dec = program.instructions[:2]
        assert (inc.opcode, inc.imm) == ("addi", 1)
        assert (dec.opcode, dec.imm) == ("subi", 1)


class TestDisassembly:
    def test_render_roundtrip_reassembles(self):
        source = asm(
            "li r1, 5\nadd r2, r1, r1\nld r3, 2(r2)\nslt r4, r3, r2\nout r4",
            data="t: .word 1, 2, 3, 4",
        )
        program = assemble(source)
        listing = program.disassemble()
        assert "main:" in listing
        assert "li r1, 5" in listing

    def test_pc_assigned_sequentially(self):
        program = assemble(asm("nop\nnop\nnop"))
        assert [i.pc for i in program.instructions] == list(range(len(program.instructions)))


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=-(2**40), max_value=2**40))
def test_property_li_preserves_immediate(value):
    program = assemble(asm(f"li r1, {value}"))
    assert program.instructions[0].imm == value
