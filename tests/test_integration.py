"""Cross-module integration invariants.

These tie the layers together: the metric definitions, the predictors,
the instrumentation and the workloads must agree with each other, not
just with their own unit tests.
"""

import pytest

from repro.core.metrics import ValueStreamStats
from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind
from repro.isa.instrument import ProfileTarget
from repro.predictors.base import run_trace
from repro.predictors.last_value import LastValuePredictor
from repro.workloads.harness import profile_workload, trace_workload

SCALE = 0.12


@pytest.fixture(scope="module")
def go_traces():
    return trace_workload("go", scale=SCALE, targets=(ProfileTarget.LOADS,))


@pytest.fixture(scope="module")
def go_profile():
    return profile_workload("go", scale=SCALE, targets=(ProfileTarget.LOADS,))


class TestMetricPredictorAgreement:
    def test_lvp_metric_equals_lvp_predictor_accuracy(self, go_traces):
        """The LVP metric is defined as the last-value predictor's hit
        rate; the profile and the predictor must agree per site."""
        for site, trace in go_traces.items():
            if len(trace) < 2:
                continue
            stats = ValueStreamStats()
            stats.record_many(trace)
            predictor_stats = run_trace(LastValuePredictor(), trace)
            assert predictor_stats.hits / (len(trace) - 1) == pytest.approx(
                stats.lvp()
            ), str(site)

    def test_profile_matches_trace_replay(self, go_traces, go_profile):
        """Profiling online must equal replaying the trace offline."""
        for site, trace in go_traces.items():
            replay = ValueStreamStats()
            replay.record_many(trace)
            online = go_profile.database.profile_for(site).exact
            assert online.histogram == replay.histogram
            assert online.lvp() == pytest.approx(replay.lvp())


class TestTNVvsExact:
    def test_tnv_estimate_close_on_real_sites(self, go_profile):
        for profile in go_profile.database.profiles(SiteKind.LOAD):
            exact_inv = profile.exact.invariance(1)
            tnv_inv = profile.tnv.estimated_invariance(1)
            assert tnv_inv <= exact_inv + 1e-9
            if profile.executions > 200:
                assert tnv_inv == pytest.approx(exact_inv, abs=0.15)

    def test_tnv_top_matches_exact_top_on_skewed_sites(self, go_profile):
        for profile in go_profile.database.profiles(SiteKind.LOAD):
            if profile.exact.invariance(1) > 0.5 and profile.executions > 100:
                assert profile.tnv.top_value() == profile.exact.top(1)[0][0]


class TestSerializationRoundtrip:
    def test_workload_profile_survives_json(self, go_profile):
        restored = ProfileDatabase.from_json(go_profile.database.to_json())
        assert len(restored) == len(go_profile.database)
        for profile in go_profile.database.profiles(SiteKind.LOAD):
            clone = restored.profile_for(profile.site)
            assert clone.executions == profile.executions
            assert clone.tnv.top_value() == profile.tnv.top_value()


class TestCrossInputStability:
    def test_hot_sites_overlap_between_inputs(self):
        train = profile_workload("gcc", "train", scale=SCALE, targets=(ProfileTarget.LOADS,))
        test = profile_workload("gcc", "test", scale=SCALE, targets=(ProfileTarget.LOADS,))
        train_hot = {s for s, m in train.database.metrics_by_site(SiteKind.LOAD)[:5]}
        test_hot = {s for s, m in test.database.metrics_by_site(SiteKind.LOAD)[:5]}
        assert len(train_hot & test_hot) >= 3

    def test_top_values_transfer(self):
        """The thesis' key transfer claim at site granularity: a site's
        hottest value on train usually stays its hottest value on test."""
        train = profile_workload("go", "train", scale=SCALE, targets=(ProfileTarget.LOADS,))
        test = profile_workload("go", "test", scale=SCALE, targets=(ProfileTarget.LOADS,))
        agree = total = 0
        for site, metrics in train.database.metrics_by_site(SiteKind.LOAD):
            if metrics.executions < 50 or metrics.inv_top1 < 0.4:
                continue
            if site in test.database:
                total += 1
                if (
                    test.database.profile_for(site).tnv.top_value()
                    == train.database.profile_for(site).tnv.top_value()
                ):
                    agree += 1
        assert total > 0
        assert agree / total >= 0.75


class TestEndToEndSpecializationPipeline:
    def test_profile_select_specialize_verify(self):
        """The full Chapter X loop on a demo function."""
        from repro.pyprof.tracer import profile_calls
        from repro.specialize.analysis import find_candidates
        from repro.specialize.demos import DEMOS, demo_calls
        from repro.specialize.runtime import SpecializedFunction

        demo = DEMOS[0]
        calls = demo_calls(demo, "train", 120)
        database = profile_calls(demo.func, calls)
        candidates = find_candidates(database, min_invariance=0.6, min_executions=20)
        assert candidates
        import inspect

        names = list(inspect.signature(demo.func).parameters)
        bindings = {}
        for candidate in candidates:
            label = candidate.site.label
            if ":" in label:
                param = label.split(":", 1)[1]
                if param in demo.invariant_params:
                    bindings.setdefault(param, candidate.value)
        assert bindings
        dispatcher = SpecializedFunction(demo.func)
        dispatcher.add_variant(bindings)
        for call in demo_calls(demo, "test", 60):
            assert dispatcher(*call) == demo.func(*call)
        assert dispatcher.guard_hits > dispatcher.guard_misses
