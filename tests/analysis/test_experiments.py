"""Integration tests: every registered experiment runs and its headline
claims hold at reduced scale.

These are the "does the reproduction reproduce" tests.  Thresholds are
deliberately loose — they assert the *shape* of each result (orderings,
signs, correlations), not absolute numbers.
"""

import pytest

from repro.analysis import experiments

SCALE = 0.15

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module", autouse=True)
def _shared_cache():
    # Experiments memoize profiled runs per process; keep them for the
    # module then release the memory.
    yield
    experiments.clear_caches()


def run(experiment_id, scale=SCALE):
    return experiments.run(experiment_id, scale=scale)


class TestRegistry:
    def test_twenty_two_experiments_registered(self):
        assert len(experiments.all_experiments()) == 22

    def test_unknown_id_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            experiments.run("table-nonexistent")

    def test_metadata_complete(self):
        for exp in experiments.all_experiments():
            assert exp.title and exp.paper_artifact and exp.claim


class TestProfileExperiments:
    def test_benchmarks_table(self):
        result = run("table-benchmarks")
        assert len(result.data) == 8
        for entry in result.data.values():
            assert entry["train"]["instructions"] > 0
            assert entry["test"]["instructions"] > 0

    def test_load_values_reasonable(self):
        result = run("table-load-values")
        average = result.data["average"]
        # Headline claim: loads show substantial value locality.
        assert average["Inv-All"] > 30.0
        assert average["Inv-Top1"] > 10.0
        assert 0 <= average["LVP"] <= 100

    def test_all_instructions_reasonable(self):
        result = run("table-all-instructions")
        average = result.data["average"]
        assert average["Inv-Top1"] > 15.0
        assert average["%Zeros"] > 1.0  # zeros are a visible fraction

    def test_insn_classes_ordering(self):
        result = run("table-insn-classes")
        # Compare/move classes are more invariant than multiplies.
        assert result.data["compare"]["Inv-Top1"] > result.data["muldiv"]["Inv-Top1"]
        assert result.data["move"]["Inv-Top1"] > result.data["muldiv"]["Inv-Top1"]

    def test_top_procedures_concentration(self):
        result = run("table-top-procedures")
        for rows in result.data.values():
            assert rows[0]["share"] >= rows[-1]["share"]

    def test_train_vs_test_correlation(self):
        result = run("table-train-vs-test")
        # The Wall [38] claim: profiles transfer across inputs.
        assert result.data["mean_correlation"] > 0.85

    def test_invariance_distribution_bimodal_tendency(self):
        result = run("fig-invariance-distribution")
        buckets = result.data["all"]
        shares = [b["share"] for b in buckets]
        assert sum(shares) == pytest.approx(1.0, abs=1e-6)
        # Ends hold more mass than the middle (weak bimodality test).
        ends = shares[0] + shares[-1]
        middle = shares[4] + shares[5]
        assert ends > middle

    def test_memory_locations_more_invariant_than_loads(self):
        memory = run("table-memory-locations").data["average"]["Inv-Top1"]
        loads = run("table-load-values").data["average"]["Inv-Top1"]
        assert memory > loads * 0.8  # at least comparable

    def test_basic_block_skew(self):
        result = run("table-basic-blocks")
        # Table IV.1's point: hot blocks dominate execution.
        assert result.data["mean_top_10pct"] > 0.3
        for name, entry in result.data.items():
            if isinstance(entry, dict):
                assert entry["top_50pct"] >= entry["top_10pct"]

    def test_parameters_have_semi_invariant_mass(self):
        result = run("table-parameters")
        shares = [
            entry["semi_invariant_share"]
            for entry in result.data.values()
            if isinstance(entry, dict) and "semi_invariant_share" in entry
        ]
        assert max(shares) > 0.2


class TestSamplingExperiments:
    def test_convergence_is_early(self):
        result = run("fig-convergence")
        assert result.data["mean_converged_fraction"] < 0.6

    def test_sampling_tradeoff(self):
        result = run("table-sampling-accuracy")
        average = result.data["average"]
        # More sampling -> tighter estimates.
        assert average["periodic 1%"]["overhead"] < average["periodic 10%"]["overhead"]
        assert average["periodic 1%"]["inv_error"] >= average["periodic 10%"]["inv_error"]
        # All sampled estimates stay in a usable range.
        assert average["convergent"]["inv_error"] < 0.2

    def test_tnv_accuracy_clearing_beats_lfu_on_phased(self):
        result = run("fig-tnv-accuracy")
        phased = result.data["phased"]
        lfu_error = phased["LFU (no clearing)"]["inv_error"]
        best_clearing = min(
            entry["inv_error"]
            for label, entry in phased.items()
            if label != "LFU (no clearing)"
        )
        assert best_clearing < lfu_error
        # And on real (steady) traces everything is accurate.
        for entry in result.data["real"].values():
            assert entry["inv_error"] < 0.05


class TestPredictorExperiments:
    def test_predictor_ordering(self):
        result = run("table-predictors")
        averages = result.data["average"]
        assert averages["stride"] > averages["lvp"]
        assert averages["hybrid(stride+2level)"] >= averages["stride"] - 0.02
        assert averages["hybrid(stride+2level)"] >= averages["2level"] - 0.02

    def test_vht_aliasing_tradeoff(self):
        result = run("table-vht-aliasing")
        # Filtering cuts conflict evictions at every size...
        for name, entry in result.data.items():
            if isinstance(entry, dict) and "64" in entry:
                assert entry["64"]["filtered_conflicts"] <= entry["64"]["unfiltered_conflicts"]
        # ...and its hit-rate benefit is largest under aliasing pressure.
        assert result.data["mean_gain_small_table"] > result.data["mean_gain_large_table"]

    def test_filtering_improves_accuracy(self):
        result = run("table-predictor-filtering")
        averages = result.data["average"]
        assert averages["filtered"] > averages["unfiltered"] + 0.2
        assert averages["pressure"] < 0.9


class TestApplicationExperiments:
    def test_specialization_wins_on_designed_case(self):
        result = run("table-specialization", scale=0.4)
        filt = result.data["filter_signal"]
        assert filt["bindings"], "profile failed to find the semi-invariant params"
        assert filt["speedup_direct"] > 1.0
        assert filt["guard_hit_rate"] > 0.5

    def test_pyprof_finds_semi_invariant_sites(self):
        result = run("table-pyprof", scale=0.4)
        entry = result.data["perl.reference.ast"]
        assert entry["sites"] >= 5
        assert entry["semi_invariant_sites"], "no semi-invariant Python sites found"


class TestExtensionExperiments:
    def test_calling_context_never_hurts(self):
        result = run("table-calling-context")
        assert result.data["min_gain"] >= -1e-9
        assert result.data["mean_gain"] >= 0.0
        # ijpeg's dct1d strides split cleanly by call site.
        assert result.data["ijpeg"]["gain"] > 0.1

    def test_load_speculation_filter_flips_benefit(self):
        result = run("table-load-speculation")
        average = result.data["average"]
        assert average["all"]["net_per_1k"] < 0
        assert average["filtered"]["net_per_1k"] > average["all"]["net_per_1k"]
        assert average["filtered"]["misspec"] < average["all"]["misspec"]

    def test_isa_specialization_safe_and_profitable(self):
        result = run("table-isa-specialization", scale=0.3)
        assert result.data["all_outputs_identical"]
        # ijpeg's per-call-site strides are the designed win; every
        # other program must be left alone (no regression possible).
        assert result.data["ijpeg"]["variants"] >= 1
        assert result.data["ijpeg"]["reduction"] > 0
        for name, entry in result.data.items():
            if isinstance(entry, dict) and "reduction" in entry:
                assert entry["reduction"] >= 0, name

    def test_memoization_advisor_decides_correctly(self):
        result = run("table-memoization", scale=0.4)
        assert result.data["zipf-args"]["enabled"]
        assert result.data["zipf-args"]["hit_rate"] > 0.5
        assert not result.data["unique-args"]["enabled"]
        assert not result.data["unhashable-args"]["enabled"]


class TestResultRendering:
    @pytest.mark.parametrize(
        "experiment_id",
        ["table-load-values", "fig-invariance-distribution", "table-insn-classes"],
    )
    def test_text_nonempty(self, experiment_id):
        result = run(experiment_id)
        assert result.text.strip()
        assert result.experiment == experiment_id
