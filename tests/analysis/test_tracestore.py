"""Tests for the simulate-once/replay-many event-trace store.

The store's contract is strict: every replay view must be
*indistinguishable* from the live observer it replaces — same profile
database JSON, same per-site trace dicts (including iteration order and
cap/drop accounting), same global event order.  These tests pin that
contract on real workload streams, plus the serialization round-trip
the disk cache depends on.
"""

import pickle

import pytest

from repro.core.profile import ProfileDatabase
from repro.core.tracestore import (
    EventTrace,
    TraceCaptureObserver,
    TraceStoreError,
    replay_global_events,
    replay_profile,
    replay_site_traces,
)
from repro.isa.instrument import (
    ALL_TARGETS,
    GlobalTraceCollector,
    ProfileTarget,
    ValueProfiler,
    ValueTraceCollector,
)
from repro.isa.machine import Machine
from repro.workloads.registry import get_workload

SCALE = 0.1
NAME = "compress"


@pytest.fixture(scope="module")
def captured():
    """One captured trace of the reference workload, shared module-wide."""
    workload = get_workload(NAME)
    program = workload.program()
    dataset = workload.dataset("train", scale=SCALE)
    capture = TraceCaptureObserver(program)
    machine = Machine(program, observer=capture)
    machine.set_input(dataset.values)
    result = machine.run()
    return EventTrace(
        program=NAME,
        variant="train",
        scale=SCALE,
        sites=capture.sites,
        site_ids=capture.site_ids,
        values=capture.values,
        result=result,
        dataset=dataset,
    )


def _live_machine(observer):
    workload = get_workload(NAME)
    machine = Machine(workload.program(), observer=observer)
    machine.set_input(workload.dataset("train", scale=SCALE).values)
    machine.run()


class TestSerialization:
    def test_payload_roundtrip_preserves_stream(self, captured):
        payload = pickle.loads(pickle.dumps(captured.to_payload()))
        restored = EventTrace.from_payload(payload)
        assert restored.sites == captured.sites
        assert restored.site_ids == captured.site_ids
        assert restored.values == captured.values
        assert restored.program == NAME
        assert list(restored.result.output) == list(captured.result.output)

    def test_unknown_format_rejected(self, captured):
        payload = captured.to_payload()
        payload["format"] = 999
        with pytest.raises(TraceStoreError):
            EventTrace.from_payload(payload)

    def test_column_length_mismatch_rejected(self, captured):
        import zlib
        from array import array

        payload = captured.to_payload()
        truncated = array("q", list(captured.values)[:-1])
        payload["values"] = zlib.compress(truncated.tobytes(), 1)
        with pytest.raises(TraceStoreError):
            EventTrace.from_payload(payload)


class TestReplayEquivalence:
    @pytest.mark.parametrize(
        "targets",
        [
            (ProfileTarget.INSTRUCTIONS,),
            (ProfileTarget.LOADS,),
            (ProfileTarget.LOADS, ProfileTarget.MEMORY),
            tuple(ALL_TARGETS),
        ],
        ids=["instructions", "loads", "loads+memory", "all"],
    )
    def test_replay_profile_matches_live_profiler(self, captured, targets):
        live = ProfileDatabase(name=NAME)
        _live_machine(
            ValueProfiler(get_workload(NAME).program(), live, targets=targets)
        )
        replayed = replay_profile(captured, targets, name=NAME)
        assert replayed.to_json() == live.to_json()

    def test_replay_site_traces_matches_live_collector(self, captured):
        collector = ValueTraceCollector(
            get_workload(NAME).program(), targets=(ProfileTarget.LOADS,)
        )
        _live_machine(collector)
        traces, dropped = replay_site_traces(captured, (ProfileTarget.LOADS,))
        assert traces == collector.traces
        assert list(traces) == list(collector.traces), "site order differs"
        assert dropped == collector.dropped == 0

    def test_replay_site_traces_cap_matches_live_cap(self, captured):
        collector = ValueTraceCollector(
            get_workload(NAME).program(),
            targets=(ProfileTarget.INSTRUCTIONS,),
            max_per_site=5,
        )
        _live_machine(collector)
        traces, dropped = replay_site_traces(
            captured, (ProfileTarget.INSTRUCTIONS,), max_per_site=5
        )
        assert traces == collector.traces
        assert dropped == collector.dropped > 0

    def test_replay_global_events_matches_live_collector(self, captured):
        collector = GlobalTraceCollector(
            get_workload(NAME).program(),
            targets=(ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS),
            max_events=1000,
        )
        _live_machine(collector)
        events, dropped = replay_global_events(
            captured,
            (ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS),
            max_events=1000,
        )
        assert events == collector.events
        assert dropped == collector.dropped > 0


class TestFoldModeEquivalence:
    """Every fold mode must replay to byte-identical profile databases.

    ``grouped`` (kernel auto-selected), forced ``python``, and the
    legacy ``event`` path all sit behind ``replay_profile``; the CI
    equivalence job additionally diffs whole-experiment output between
    ``REPRO_FOLD=grouped`` and ``REPRO_FOLD=event``.
    """

    @pytest.fixture(autouse=True)
    def _restore_mode(self):
        from repro.core import fold as foldmod

        before = foldmod.fold_mode()
        yield
        foldmod.set_fold_mode(before)

    @pytest.mark.parametrize("mode", ["grouped", "python", "event"])
    @pytest.mark.parametrize(
        "targets",
        [(ProfileTarget.LOADS,), tuple(ALL_TARGETS)],
        ids=["loads", "all"],
    )
    def test_replay_profile_matches_live_in_every_mode(self, captured, mode, targets):
        from repro.core import fold as foldmod

        live = ProfileDatabase(name=NAME)
        _live_machine(
            ValueProfiler(get_workload(NAME).program(), live, targets=targets)
        )
        foldmod.set_fold_mode(mode)
        replayed = replay_profile(captured, targets, name=NAME)
        assert replayed.to_json() == live.to_json()

    def test_site_folds_order_matches_site_values(self, captured):
        """Fold gather (numpy path included) must yield sites in the
        same first-appearance order as the list gather."""
        targets = tuple(ALL_TARGETS)
        by_values = [site for site, _ in captured.site_values(targets)]
        by_folds = [site for site, _ in captured.site_folds(targets, 2000)]
        assert by_folds == by_values

    def test_site_folds_counts_are_python_ints(self, captured):
        for _, fold in captured.site_folds((ProfileTarget.LOADS,), 2000):
            value, count = next(iter(fold.counts.items()))
            assert type(value) is int
            assert type(count) is int
            break


class TestValueTraceCollectorDropped:
    def test_uncapped_collection_drops_nothing(self):
        collector = ValueTraceCollector(get_workload(NAME).program())
        _live_machine(collector)
        assert collector.dropped == 0
        assert sum(len(t) for t in collector.traces.values()) > 0

    def test_cap_accounts_for_every_discarded_event(self):
        full = ValueTraceCollector(get_workload(NAME).program())
        _live_machine(full)
        capped = ValueTraceCollector(get_workload(NAME).program(), max_per_site=3)
        _live_machine(capped)
        total = sum(len(t) for t in full.traces.values())
        kept = sum(len(t) for t in capped.traces.values())
        assert capped.dropped == total - kept > 0
        assert all(len(t) <= 3 for t in capped.traces.values())


@pytest.mark.slow
class TestProvenanceSurfaced:
    def test_table_predictors_reports_trace_provenance(self):
        from repro.analysis import experiments

        result = experiments.run("table-predictors", scale=0.1)
        provenance = result.data["trace_provenance"]
        assert set(provenance) == set(experiments.programs())
        for info in provenance.values():
            assert info["source"] in ("replay", "simulation")
            assert info["events"] > 0
            assert info["dropped"] == 0
