"""Tests for profile diffing."""

import pytest

from repro.analysis.diff import diff_profiles
from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind, load_site

SITE_A = load_site("p", "f", 1)
SITE_B = load_site("p", "f", 2)
SITE_C = load_site("p", "g", 3)


def db_with(name, recordings):
    db = ProfileDatabase(name=name)
    for site, values in recordings.items():
        for value in values:
            db.record(site, value)
    return db


class TestDiffStructure:
    def test_common_and_exclusive_sites(self):
        a = db_with("a", {SITE_A: [1] * 10, SITE_B: [2] * 10})
        b = db_with("b", {SITE_A: [1] * 10, SITE_C: [3] * 10})
        diff = diff_profiles(a, b)
        assert [d.site for d in diff.common] == [SITE_A]
        assert diff.only_in_a == [SITE_B]
        assert diff.only_in_b == [SITE_C]

    def test_kind_filter(self):
        from repro.core.sites import memory_site

        a = db_with("a", {SITE_A: [1], memory_site("p", 4): [9]})
        b = db_with("b", {SITE_A: [1], memory_site("p", 4): [9]})
        diff = diff_profiles(a, b, kind=SiteKind.LOAD)
        assert len(diff.common) == 1

    def test_min_executions_drops_cold_sites(self):
        a = db_with("a", {SITE_A: [1], SITE_B: [1] * 100})
        b = db_with("b", {SITE_A: [1], SITE_B: [1] * 100})
        diff = diff_profiles(a, b, min_executions=10)
        assert [d.site for d in diff.common] == [SITE_B]

    def test_common_sorted_by_executions(self):
        a = db_with("a", {SITE_A: [1] * 5, SITE_B: [1] * 50})
        b = db_with("b", {SITE_A: [1] * 5, SITE_B: [1] * 50})
        diff = diff_profiles(a, b)
        assert diff.common[0].site == SITE_B


class TestDriftDetection:
    def test_identical_profiles_have_no_drift(self):
        a = db_with("a", {SITE_A: [1, 1, 1, 2]})
        b = db_with("b", {SITE_A: [1, 1, 1, 2]})
        diff = diff_profiles(a, b)
        assert diff.drifted == []
        assert diff.stable_fraction == 1.0
        assert diff.invariance_correlation() == 1.0

    def test_invariance_drift_detected(self):
        a = db_with("a", {SITE_A: [1] * 100})                 # inv 1.0
        b = db_with("b", {SITE_A: [1] * 50 + list(range(50))})  # inv ~0.5
        diff = diff_profiles(a, b, drift_threshold=0.1)
        assert len(diff.drifted) == 1
        assert diff.drifted[0].inv_delta < -0.1

    def test_top_value_change_detected_even_if_invariance_stable(self):
        a = db_with("a", {SITE_A: [7] * 100})
        b = db_with("b", {SITE_A: [9] * 100})
        diff = diff_profiles(a, b)
        assert diff.drifted[0].top_value_changed
        assert diff.drifted[0].inv_delta == pytest.approx(0.0)

    def test_small_changes_below_threshold_are_stable(self):
        a = db_with("a", {SITE_A: [1] * 95 + [2] * 5})
        b = db_with("b", {SITE_A: [1] * 92 + [2] * 8})
        diff = diff_profiles(a, b, drift_threshold=0.1)
        assert diff.drifted == []

    def test_stable_fraction_is_execution_weighted(self):
        a = db_with("a", {SITE_A: [1] * 90, SITE_B: [5] * 10})
        b = db_with("b", {SITE_A: [1] * 90, SITE_B: [6] * 10})  # B drifts
        diff = diff_profiles(a, b)
        assert diff.stable_fraction == pytest.approx(0.9)

    def test_mean_abs_inv_delta(self):
        a = db_with("a", {SITE_A: [1] * 100})
        b = db_with("b", {SITE_A: [1] * 80 + list(range(100, 120))})
        diff = diff_profiles(a, b)
        assert diff.mean_abs_inv_delta() == pytest.approx(0.2, abs=0.01)


class TestRendering:
    def test_render_contains_summary(self):
        a = db_with("train", {SITE_A: [1] * 10})
        b = db_with("test", {SITE_A: [2] * 10})
        text = diff_profiles(a, b).render()
        assert "train" in text and "test" in text
        assert "correlation" in text
        assert "drifted sites" in text

    def test_render_no_drift(self):
        a = db_with("a", {SITE_A: [1] * 10})
        b = db_with("b", {SITE_A: [1] * 10})
        assert "no drifted sites" in diff_profiles(a, b).render()


class TestOnRealWorkload:
    def test_train_vs_test_is_stable(self):
        from repro.isa.instrument import ProfileTarget
        from repro.workloads import profile_workload

        a = profile_workload("gcc", "train", scale=0.15, targets=(ProfileTarget.LOADS,))
        b = profile_workload("gcc", "test", scale=0.15, targets=(ProfileTarget.LOADS,))
        diff = diff_profiles(a.database, b.database, min_executions=20)
        assert diff.invariance_correlation() > 0.9
        assert diff.stable_fraction > 0.5
