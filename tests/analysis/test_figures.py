"""Tests for ASCII figures."""

from repro.analysis.figures import bar_chart, series_plot


class TestBarChart:
    def test_labels_and_values_present(self):
        chart = bar_chart({"alpha": 50.0, "beta": 100.0}, title="T", width=20)
        assert "T" in chart
        assert "alpha" in chart and "beta" in chart
        assert "50.0%" in chart

    def test_bars_scale_with_values(self):
        chart = bar_chart({"a": 10.0, "b": 100.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") < lines[1].count("#")

    def test_max_value_pins_scale(self):
        chart = bar_chart({"a": 50.0}, width=10, max_value=100.0)
        assert chart.count("#") == 5

    def test_empty_data(self):
        assert bar_chart({}, title="empty") == "empty"

    def test_all_zero_values(self):
        chart = bar_chart({"a": 0.0})
        assert "#" not in chart


class TestSeriesPlot:
    def test_axes_annotated(self):
        plot = series_plot({"s": [(0, 0.0), (1, 1.0)]}, x_label="t", y_label="v")
        assert "t: 0 .. 1" in plot
        assert "v: 0.000 .. 1.000" in plot

    def test_legend_lists_series(self):
        plot = series_plot({"one": [(0, 0)], "two": [(1, 1)]})
        assert "one" in plot and "two" in plot

    def test_markers_plotted(self):
        plot = series_plot({"s": [(0, 0), (1, 1)]}, width=10, height=5)
        assert "*" in plot

    def test_empty(self):
        assert series_plot({}, title="nothing") == "nothing"

    def test_degenerate_single_point(self):
        plot = series_plot({"s": [(5, 0.5)]})
        assert "*" in plot
