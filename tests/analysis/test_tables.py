"""Tests for table rendering."""

import pytest

from repro.analysis.tables import METRICS_COLUMNS, Table, metrics_row, percentage
from repro.core.metrics import SiteMetrics


class TestTable:
    def test_basic_render(self):
        table = Table(("name", "value"), title="T")
        table.add_row("a", 1)
        text = table.render()
        assert "T" in text
        assert "name" in text
        assert "a" in text

    def test_column_alignment(self):
        table = Table(("name", "value"))
        table.add_row("a", 1)
        table.add_row("long-name", 100)
        lines = table.render().splitlines()
        # numeric column right-aligned: "1" ends where "100" ends
        assert lines[-2].rstrip().endswith("1")
        assert lines[-1].rstrip().endswith("100")

    def test_float_precision(self):
        table = Table(("v",), precision=3)
        table.add_row(1.23456)
        assert "1.235" in table.render()

    def test_wrong_cell_count_rejected(self):
        table = Table(("a", "b"))
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_separator(self):
        table = Table(("a",))
        table.add_row(1)
        table.add_separator()
        table.add_row(2)
        lines = table.render().splitlines()
        assert any(set(line) == {"-"} for line in lines[2:])

    def test_str_equals_render(self):
        table = Table(("a",))
        table.add_row(1)
        assert str(table) == table.render()


class TestHelpers:
    def test_percentage(self):
        assert percentage(0.5) == 50.0

    def test_metrics_row_shape(self):
        metrics = SiteMetrics(10, 0.1, 0.2, 0.3, 4, 0.5)
        row = metrics_row("prog", metrics)
        assert len(row) == len(METRICS_COLUMNS)
        assert row[0] == "prog"
        assert row[2] == pytest.approx(10.0)  # LVP%

    def test_metrics_row_millions(self):
        metrics = SiteMetrics(2_500_000, 0, 0, 0, 0, 0)
        row = metrics_row("prog", metrics)
        assert row[1] == "2.5M"
