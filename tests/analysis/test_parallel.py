"""Tests for the parallel experiment runner and the persistent cache.

Correctness of the parallel path means: identical rendered text for
every *deterministic* experiment, results in the same order as the
serial path, and cache hits indistinguishable from re-profiling.
Wall-clock speedup is hardware-dependent (a single-CPU container
cannot show one), so these tests assert equivalence, not timing.
"""

import pytest

from repro.analysis import experiments
from repro.analysis.parallel import (
    ProfileJob,
    _dispatch_order,
    fold_and_merge,
    fold_jobs,
    profile_and_merge,
    profile_jobs,
    run_experiments,
)
from repro.errors import ExperimentError
from repro.obs import METRICS, TRACER

pytestmark = pytest.mark.slow

#: cheap, deterministic experiments used for the serial/parallel diff.
CHEAP_IDS = ["table-load-values", "table-top-procedures"]
SCALE = 0.1


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a fresh directory and drop the L1 memo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    experiments.clear_caches()
    yield tmp_path
    experiments.clear_caches()


class TestDispatchOrder:
    def test_known_ids_sorted_heaviest_first(self):
        order = _dispatch_order(["table-load-values", "table-predictors"])
        assert order == ["table-predictors", "table-load-values"]

    def test_unknown_ids_dispatch_first(self):
        order = _dispatch_order(["table-predictors", "brand-new-experiment"])
        assert order[0] == "brand-new-experiment"


class TestDeterministicFlag:
    def test_wall_clock_experiments_flagged(self):
        nondeterministic = {
            exp.id for exp in experiments.all_experiments() if not exp.deterministic
        }
        assert nondeterministic == {"table-memoization", "table-specialization"}


class TestRunAllParallel:
    def test_parallel_matches_serial_text(self, isolated_cache):
        serial = experiments.run_all(scale=SCALE, jobs=1, ids=CHEAP_IDS)
        parallel = experiments.run_all(scale=SCALE, jobs=2, ids=CHEAP_IDS)
        assert [r.experiment for r in parallel] == [r.experiment for r in serial]
        for s, p in zip(serial, parallel):
            assert p.text == s.text
            assert p.title == s.title

    def test_parallel_preserves_requested_order(self, isolated_cache):
        ids = list(reversed(CHEAP_IDS))
        results = run_experiments(ids, scale=SCALE, jobs=2)
        assert [r.experiment for r in results] == ids

    def test_run_all_rejects_unknown_id(self):
        with pytest.raises(ExperimentError):
            experiments.run_all(ids=["no-such-experiment"])

    def test_empty_ids(self):
        assert run_experiments([], scale=SCALE, jobs=2) == []


class TestDiskCache:
    def test_profiled_roundtrips_through_disk(self, isolated_cache):
        first = experiments.profiled("compress", scale=SCALE)
        assert list(isolated_cache.glob("events-*.pkl")), "expected a cache write"
        experiments.clear_caches()  # force the next read to come from disk
        second = experiments.profiled("compress", scale=SCALE)
        assert second.database.to_json() == first.database.to_json()
        assert second.workload.name == first.workload.name
        assert list(second.result.output) == list(first.result.output)

    def test_traced_roundtrips_through_disk(self, isolated_cache):
        first = experiments.traced("compress", scale=SCALE)
        experiments.clear_caches()
        second = experiments.traced("compress", scale=SCALE)
        assert second == first

    def test_caching_disabled_writes_nothing(self, isolated_cache):
        with experiments.caching_disabled():
            experiments.profiled("compress", scale=SCALE)
        assert not list(isolated_cache.glob("*.pkl"))

    def test_clear_disk_cache(self, isolated_cache):
        experiments.profiled("compress", scale=SCALE)
        experiments.traced("compress", scale=SCALE)
        removed = experiments.clear_disk_cache()
        assert removed >= 1  # profiled and traced share one event trace
        assert not list(isolated_cache.glob("*.pkl"))

    def test_corrupt_entry_reads_as_miss(self, isolated_cache):
        experiments.profiled("compress", scale=SCALE)
        for path in isolated_cache.glob("events-*.pkl"):
            path.write_bytes(b"not a pickle")
        experiments.clear_caches()
        run = experiments.profiled("compress", scale=SCALE)
        assert run.database.total_executions() > 0

    def test_source_hash_stable_within_process(self):
        assert experiments.source_tree_hash() == experiments.source_tree_hash()


class TestObservabilityFanout:
    """Workers record into their own registries; the parent merges."""

    @pytest.fixture
    def observed(self, isolated_cache):
        METRICS.reset()
        METRICS.enable()
        TRACER.enable()
        yield
        METRICS.disable()
        METRICS.reset()
        TRACER.disable()
        TRACER.drain()

    def test_metrics_merge_across_workers(self, observed):
        run_experiments(CHEAP_IDS, scale=SCALE, jobs=2, use_cache=False)
        counters = METRICS.snapshot()["counters"]
        # Both experiments profile workloads, so the merged registry
        # must show profiling work from more than one worker process.
        assert counters["profile.sites_created"] > 0
        assert counters["tnv.batch_records"] > 0
        assert counters["machine.instructions"] > 0
        # Replay-era cache traffic: each worker captured its event
        # traces fresh (the cache was bypassed) and replayed from them.
        assert counters["tracestore.captures"] >= len(CHEAP_IDS)
        assert counters["tracestore.replays"] >= len(CHEAP_IDS)

    def test_worker_spans_adopted_and_reparented(self, observed):
        with TRACER.span("run_all") as root:
            run_experiments(CHEAP_IDS, scale=SCALE, jobs=2, use_cache=False)
        spans = TRACER.drain()
        worker_spans = [s for s in spans if s.get("attrs", {}).get("worker")]
        assert {s["attrs"]["worker"] for s in worker_spans} == set(CHEAP_IDS)
        ids = {s["span_id"] for s in spans}
        assert len(ids) == len(spans), "combined trace must keep ids unique"
        roots = [s for s in worker_spans if s["parent_id"] == root.span_id]
        assert len(roots) == len(CHEAP_IDS), "one adopted root per worker"
        for span in spans:
            assert span["parent_id"] is None or span["parent_id"] in ids

    def test_disabled_obs_ships_nothing(self, isolated_cache):
        assert not METRICS.enabled and not TRACER.enabled
        run_experiments(CHEAP_IDS, scale=SCALE, jobs=2, use_cache=False)
        assert METRICS.snapshot()["counters"] == {}
        assert TRACER.drain() == []

    def test_jitlog_merges_from_workers(self, isolated_cache, monkeypatch):
        from repro.obs.jitlog import JITLOG

        # Workers inherit the environment, so forcing tier-2 (and fresh
        # simulation, so machines actually run) makes each worker
        # journal its own specialization lifecycle; the parent merges
        # in ids order even though metrics/tracing stay disabled.
        monkeypatch.setenv("REPRO_ENGINE", "tier2")
        monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        JITLOG.enable()
        try:
            run_experiments(CHEAP_IDS, scale=SCALE, jobs=2, use_cache=False)
            events = JITLOG.events()
            assert events, "workers must ship their journals home"
            assert any(e["type"] == "quicken" for e in events)
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs), "merge must resequence"
        finally:
            JITLOG.disable()
            JITLOG.reset()


class TestProfileFanout:
    def test_profile_jobs_match_direct_profiling(self, isolated_cache):
        from repro.workloads.harness import profile_workload

        jobs = [
            ProfileJob("compress", scale=SCALE),
            ProfileJob("go", scale=0.05),
        ]
        databases = profile_jobs(jobs, jobs=2)
        assert len(databases) == 2
        for job, database in zip(jobs, databases):
            direct = profile_workload(
                job.workload, job.variant, scale=job.scale, exact=False
            )
            assert database.to_json() == direct.database.to_json()

    def test_profile_and_merge_equals_sequential_merge(self, isolated_cache):
        jobs = [
            ProfileJob("compress", variant="train", scale=SCALE),
            ProfileJob("compress", variant="test", scale=SCALE),
        ]
        merged = profile_and_merge(jobs, jobs=2, name="compress-both")
        databases = profile_jobs(jobs, jobs=1)
        reference = databases[0]
        reference.merge(databases[1])
        reference.name = "compress-both"
        assert merged.to_json() == reference.to_json()

    def test_profile_and_merge_rejects_mixed_shapes(self):
        jobs = [
            ProfileJob("compress", capacity=10),
            ProfileJob("compress", capacity=4),
        ]
        with pytest.raises(ExperimentError):
            profile_and_merge(jobs)

    def test_profile_and_merge_rejects_empty(self):
        with pytest.raises(ExperimentError):
            profile_and_merge([])


class TestFoldFanout:
    """Workers ship folded (site, value, count) triples, not events."""

    def test_fold_jobs_match_direct_profiling(self, isolated_cache):
        from repro.workloads.harness import profile_workload

        jobs = [
            ProfileJob("compress", scale=SCALE),
            ProfileJob("go", scale=0.05),
        ]
        databases = fold_jobs(jobs, jobs=2)
        assert len(databases) == 2
        for job, database in zip(jobs, databases):
            direct = profile_workload(job.workload, job.variant, scale=job.scale)
            direct.database.name = job.workload
            assert database.to_json() == direct.database.to_json()
            # Unlike the to_json-shipping path, folds carry the full
            # histogram, so the rebuilt profiles keep exact statistics.
            for profile in database:
                assert profile.exact is not None
                reference = direct.database.profile_for(profile.site).exact
                assert profile.exact.metrics() == reference.metrics()

    def test_fold_and_merge_equals_sequential_merge(self, isolated_cache):
        jobs = [
            ProfileJob("compress", variant="train", scale=SCALE),
            ProfileJob("compress", variant="test", scale=SCALE),
        ]
        merged = fold_and_merge(jobs, jobs=2, name="compress-both")
        databases = fold_jobs(jobs, jobs=1)
        reference = databases[0]
        reference.merge(databases[1])
        reference.name = "compress-both"
        assert merged.to_json() == reference.to_json()

    def test_fold_and_merge_rejects_mixed_shapes(self):
        jobs = [
            ProfileJob("compress", capacity=10),
            ProfileJob("compress", capacity=4),
        ]
        with pytest.raises(ExperimentError):
            fold_and_merge(jobs)
