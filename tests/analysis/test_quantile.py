"""Tests for invariance-bucket analysis."""

import pytest

from repro.analysis.quantile import cumulative_share, invariance_buckets, top_weighted
from repro.core.metrics import SiteMetrics


def metrics(executions, inv):
    return SiteMetrics(executions, inv, inv, inv, 1, 0.0)


class TestInvarianceBuckets:
    def test_shares_sum_to_one(self):
        rows = [metrics(10, 0.05), metrics(30, 0.55), metrics(60, 0.95)]
        buckets = invariance_buckets(rows)
        assert sum(b.share for b in buckets) == pytest.approx(1.0)

    def test_bucket_assignment(self):
        rows = [metrics(100, 0.05)]
        buckets = invariance_buckets(rows)
        assert buckets[0].sites == 1
        assert buckets[0].share == pytest.approx(1.0)

    def test_invariance_one_lands_in_top_bucket(self):
        buckets = invariance_buckets([metrics(10, 1.0)])
        assert buckets[-1].sites == 1

    def test_execution_weighting(self):
        rows = [metrics(90, 0.95), metrics(10, 0.05)]
        buckets = invariance_buckets(rows)
        assert buckets[-1].share == pytest.approx(0.9)

    def test_custom_key(self):
        rows = [
            SiteMetrics(10, lvp=1.0, inv_top1=0.0, inv_top_n=0.0, distinct=1, pct_zeros=0.0)
        ]
        buckets = invariance_buckets(rows, key=lambda m: m.lvp)
        assert buckets[-1].sites == 1

    def test_bucket_labels(self):
        buckets = invariance_buckets([metrics(1, 0.5)])
        assert buckets[0].label == "0-10%"
        assert buckets[-1].label == "90-100%"

    def test_empty_rows(self):
        buckets = invariance_buckets([])
        assert all(b.share == 0.0 for b in buckets)

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            invariance_buckets([], buckets=0)


class TestTopWeighted:
    def test_orders_by_executions(self):
        rows = [("cold", metrics(1, 0.5)), ("hot", metrics(100, 0.5))]
        ranked = top_weighted(rows, count=2)
        assert ranked[0][0] == "hot"
        assert ranked[0][2] == pytest.approx(100 / 101)

    def test_count_limits(self):
        rows = [(str(i), metrics(i + 1, 0.5)) for i in range(20)]
        assert len(top_weighted(rows, count=5)) == 5


class TestCumulativeShare:
    def test_monotone_to_one(self):
        rows = [metrics(50, 0.5), metrics(30, 0.5), metrics(20, 0.5)]
        shares = cumulative_share(rows)
        assert shares == pytest.approx([0.5, 0.8, 1.0])

    def test_empty(self):
        assert cumulative_share([]) == []

    def test_skew_visible(self):
        rows = [metrics(1000, 0.5)] + [metrics(1, 0.5)] * 10
        shares = cumulative_share(rows)
        assert shares[0] > 0.95
