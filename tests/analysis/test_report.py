"""Tests for the actionable value-profile report."""

import pytest

from repro.analysis.report import build_report
from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind, load_site
from repro.predictors.classify import InvarianceClass
from repro.specialize.analysis import BenefitModel

INVARIANT = load_site("p", "hot", 1)
SEMI = load_site("p", "hot", 2)
VARIANT = load_site("p", "cold", 3)


def populated_db():
    db = ProfileDatabase(name="test.run")
    for _ in range(1000):
        db.record(INVARIANT, 7)
    for i in range(1000):
        db.record(SEMI, 3 if i % 10 else i)
    for i in range(500):
        db.record(VARIANT, i)
    return db


class TestClassificationSection:
    def test_shares_sum_to_one(self):
        report = build_report(populated_db())
        assert sum(report.classification.values()) == pytest.approx(1.0)

    def test_classes_assigned_correctly(self):
        report = build_report(populated_db())
        assert report.classification[InvarianceClass.INVARIANT] == pytest.approx(0.4)
        assert report.classification[InvarianceClass.SEMI_INVARIANT] == pytest.approx(0.4)
        assert report.classification[InvarianceClass.VARIANT] == pytest.approx(0.2)


class TestCandidates:
    def test_candidates_ordered_by_expected_hits(self):
        report = build_report(populated_db())
        assert report.candidates
        hits = [c.expected_hits for c in report.candidates]
        assert hits == sorted(hits, reverse=True)

    def test_invariant_site_is_top_candidate(self):
        report = build_report(populated_db())
        assert report.candidates[0].site == INVARIANT
        assert report.candidates[0].value == 7

    def test_variant_site_not_a_candidate(self):
        report = build_report(populated_db())
        assert VARIANT not in {c.site for c in report.candidates}

    def test_breakeven_in_rendered_output(self):
        text = build_report(populated_db()).render()
        assert "break-even" in text
        assert "specialize" in text

    def test_harsh_benefit_model_flags_below_breakeven(self):
        harsh = BenefitModel(saving_per_call=0.001, guard_cost=0.5, specialization_cost=1e9)
        text = build_report(populated_db(), benefit=harsh).render()
        assert "below break-even" in text


class TestRendering:
    def test_sections_present(self):
        text = build_report(populated_db()).render()
        assert "Value profile report" in text
        assert "Site classification" in text
        assert "Hot-site concentration" in text
        assert "Value-prediction suitability" in text

    def test_empty_database(self):
        report = build_report(ProfileDatabase(name="empty"))
        text = report.render()
        assert "0" in text
        assert report.candidates == []
        assert "none above the invariance floor" in text

    def test_kind_filter(self):
        db = populated_db()
        report = build_report(db, kind=SiteKind.MEMORY)
        assert report.candidates == []


class TestOnRealWorkload:
    def test_gcc_report(self):
        from repro.workloads import profile_workload

        run = profile_workload("gcc", scale=0.15)
        report = build_report(run.database)
        assert report.candidates, "gcc should offer specialization candidates"
        assert report.classification[InvarianceClass.SEMI_INVARIANT] > 0.2
