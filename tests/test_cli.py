"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import METRICS, TRACER, reset_logging


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_scale(self):
        args = build_parser().parse_args(["run", "table-load-values", "--scale", "0.5"])
        assert args.experiment == "table-load-values"
        assert args.scale == 0.5

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "go"])
        assert args.variant == "train"
        assert args.kind == "load"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table-load-values" in out
        assert "fig-convergence" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "147.vortex" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "table-benchmarks", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Benchmark" in out

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "table-flying-pigs"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_workload(self, capsys):
        assert main(["profile", "go", "--scale", "0.1", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out

    def test_profile_unknown_workload_fails_cleanly(self, capsys):
        assert main(["profile", "doom"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_other_kind(self, capsys):
        assert main(["profile", "go", "--scale", "0.1", "--kind", "instruction"]) == 0

    def test_diff_command(self, capsys):
        assert main(["diff", "go", "--scale", "0.1", "--min-executions", "5"]) == 0
        out = capsys.readouterr().out
        assert "profile diff" in out
        assert "correlation" in out

    def test_report_command(self, capsys):
        assert main(["report", "gcc", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Value profile report" in out
        assert "Site classification" in out

    def test_run_with_json_export(self, tmp_path, capsys):
        out_file = tmp_path / "data.json"
        assert main(["run", "table-benchmarks", "--scale", "0.1", "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["experiment"] == "table-benchmarks"
        assert "compress" in payload["data"]

    def test_profile_with_json_export(self, tmp_path, capsys):
        out_file = tmp_path / "profile.json"
        assert main(["profile", "go", "--scale", "0.1", "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["workload"] == "go"
        assert payload["kind"] == "load"
        assert payload["sites"], "expected per-site metrics rows"
        site = payload["sites"][0]
        assert "site" in site and "executions" in site and "inv_top1" in site
        assert payload["total"]["executions"] > 0


class TestObservability:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        from repro.analysis import experiments

        # The L1 memo survives across main() calls within one process;
        # start cold so cache.misses / profile spans are observable.
        experiments.clear_caches()
        yield
        METRICS.disable()
        METRICS.reset()
        TRACER.disable()
        TRACER.drain()
        reset_logging()

    def test_run_writes_metrics_snapshot(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        code = main(
            ["run", "table-load-values", "--scale", "0.1", "--no-cache",
             "--metrics", str(metrics_file)]
        )
        assert code == 0
        snap = json.loads(metrics_file.read_text())
        assert snap["counters"]["profile.sites_created"] > 0
        assert snap["counters"]["machine.instructions"] > 0
        assert "experiment.table-load-values" in snap["timers"]
        # deterministic snapshots: comparable sections are key-sorted
        assert list(snap["counters"]) == sorted(snap["counters"])

    def test_run_writes_parseable_trace(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        code = main(
            ["run", "table-load-values", "--scale", "0.1", "--no-cache",
             "--trace", str(trace_file)]
        )
        assert code == 0
        spans = [json.loads(line) for line in trace_file.read_text().splitlines()]
        assert spans, "expected at least one span"
        names = {s["name"] for s in spans}
        assert "experiment" in names
        # The replay era: a profiled run is one event capture plus a
        # replay of the stored stream, not a live profile-workload span.
        assert "capture-events" in names
        assert "replay-profile" in names
        # schema: every record closed with an id/timing, parent ids valid
        ids = {s["span_id"] for s in spans}
        assert len(ids) == len(spans), "span ids must be unique"
        for span in spans:
            assert span["duration_s"] >= 0.0
            assert span["t_start_s"] >= 0.0
            assert span["parent_id"] is None or span["parent_id"] in ids

    def test_output_byte_identical_with_obs_enabled(self, tmp_path, capsys):
        argv = ["run", "table-benchmarks", "--scale", "0.1"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(
            argv
            + ["--trace", str(tmp_path / "t.jsonl"), "--metrics", str(tmp_path / "m.json"),
               "--log-level", "debug"]
        ) == 0
        observed = capsys.readouterr().out
        assert observed == plain

    def test_log_level_writes_progress_to_stderr(self, capsys):
        assert main(
            ["run", "table-load-values", "--scale", "0.1", "--log-level", "info"]
        ) == 0
        err = capsys.readouterr().err
        assert "running experiment table-load-values" in err

    def test_obs_disabled_after_main_returns(self, tmp_path, capsys):
        main(["run", "table-load-values", "--scale", "0.1",
              "--metrics", str(tmp_path / "m.json")])
        assert not METRICS.enabled
        assert not TRACER.enabled

    def test_stats_from_metrics(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        main(["run", "table-sampling-accuracy", "--scale", "0.1", "--no-cache",
              "--metrics", str(metrics_file)])
        capsys.readouterr()
        assert main(["stats", "--metrics", str(metrics_file)]) == 0
        out = capsys.readouterr().out
        assert "Profile cache behavior" in out
        assert "sampling overhead" in out.lower()
        assert "thesis" in out.lower()

    def test_stats_from_trace(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        main(["run", "table-load-values", "--scale", "0.1", "--no-cache",
              "--trace", str(trace_file)])
        capsys.readouterr()
        assert main(["stats", "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "time sinks" in out.lower()
        # the actual work spans dominate self time
        assert "capture-events" in out

    def test_stats_without_inputs_fails(self, capsys):
        assert main(["stats"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_unreadable_metrics_fails(self, tmp_path, capsys):
        assert main(["stats", "--metrics", str(tmp_path / "missing.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestTelemetryCommands:
    """The PR-5 surfaces: --timeseries/--flight capture, stats --json,
    inspect, and dash."""

    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        from repro.analysis import experiments
        from repro.obs.flight import FLIGHT
        from repro.obs.timeseries import TIMESERIES

        experiments.clear_caches()
        yield
        METRICS.disable()
        METRICS.reset()
        TRACER.disable()
        TRACER.drain()
        TIMESERIES.disable()
        TIMESERIES.reset()
        FLIGHT.disable()
        FLIGHT.reset()
        reset_logging()

    def test_run_writes_timeseries_jsonl(self, tmp_path, capsys):
        series_file = tmp_path / "series.jsonl"
        code = main(
            ["run", "table-load-values", "--scale", "0.1", "--no-cache",
             "--timeseries", str(series_file),
             "--timeseries-interval", "1000"]
        )
        assert code == 0
        samples = [json.loads(line) for line in series_file.read_text().splitlines()]
        assert samples, "expected at least one sample"
        ticks = [s["tick"] for s in samples]
        assert ticks == sorted(ticks)
        assert any(s["counters"] for s in samples)

    def test_run_writes_timeseries_prometheus(self, tmp_path, capsys):
        series_file = tmp_path / "series.prom"
        code = main(
            ["run", "table-load-values", "--scale", "0.1", "--no-cache",
             "--timeseries", str(series_file),
             "--timeseries-interval", "1000"]
        )
        assert code == 0
        text = series_file.read_text()
        assert "# TYPE repro_" in text

    def test_run_writes_flight_dump(self, tmp_path, capsys):
        dump_file = tmp_path / "flight.jsonl"
        code = main(
            ["run", "table-load-values", "--scale", "0.1", "--no-cache",
             "--flight", "--flight-dump", str(dump_file)]
        )
        assert code == 0
        lines = dump_file.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["flight"] is True
        assert header["reason"] == "cli-exit"
        assert header["total_events"] > 0
        event = json.loads(lines[1])
        assert "site" in event and "value" in event and "tick" in event

    def test_telemetry_disabled_after_main_returns(self, tmp_path, capsys):
        from repro.obs.flight import FLIGHT
        from repro.obs.timeseries import TIMESERIES

        main(["run", "table-load-values", "--scale", "0.1",
              "--timeseries", str(tmp_path / "s.jsonl"), "--flight"])
        assert not TIMESERIES.enabled
        assert not FLIGHT.enabled

    def test_run_writes_jitlog_capture(self, tmp_path, capsys, monkeypatch):
        from repro.obs.jitlog import JITLOG, load_jitlog

        monkeypatch.setenv("REPRO_ENGINE", "tier2")
        journal_file = tmp_path / "jitlog.jsonl"
        map_file = tmp_path / "jit.map"
        code = main(
            ["run", "table-isa-specialization", "--scale", "0.1",
             "--no-cache", "--no-replay",
             "--jitlog", str(journal_file), "--jitlog-map", str(map_file)]
        )
        assert code == 0
        assert not JITLOG.enabled, "the journal must not leak past main()"
        header, events = load_jitlog(str(journal_file))
        assert header["jitlog"] is True and header["total_events"] > 0
        assert events and {"seq", "clock", "type", "program", "block"} <= set(events[0])
        assert any(e["type"] == "quicken" for e in events)
        for line in map_file.read_text().splitlines():
            start, size, symbol = line.split()
            int(start, 16), int(size, 16)
            assert symbol.startswith("t2_")

    def test_tier2_report_command(self, tmp_path, capsys):
        json_file = tmp_path / "deck.json"
        assert main(["tier2-report", "compress", "--json", str(json_file)]) == 0
        text = capsys.readouterr().out
        assert "tier-2 specialization journal" in text
        assert "Predicted vs observed invariance" in text
        payload = json.loads(json_file.read_text())
        assert payload["workload"] == "compress"
        assert payload["event_counts"].get("quicken", 0) >= 1
        assert payload["thrashing"], "compress shows a thrashing operand"

    def test_tier2_report_unknown_workload_fails_cleanly(self, capsys):
        assert main(["tier2-report", "no-such-workload"]) != 0
        assert "no-such-workload" in capsys.readouterr().err

    def test_stats_json_export(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        main(["run", "table-load-values", "--scale", "0.1", "--no-cache",
              "--metrics", str(metrics_file)])
        capsys.readouterr()
        json_file = tmp_path / "stats.json"
        assert main(
            ["stats", "--metrics", str(metrics_file), "--json", str(json_file)]
        ) == 0
        payload = json.loads(json_file.read_text())
        for key in ("interpreter", "cache", "tracestore", "sampling",
                    "counters", "gauges", "timers"):
            assert key in payload
        assert payload["interpreter"]["instructions"] > 0

    def test_stats_json_does_not_change_text(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        main(["run", "table-load-values", "--scale", "0.1",
              "--metrics", str(metrics_file)])
        capsys.readouterr()
        assert main(["stats", "--metrics", str(metrics_file)]) == 0
        plain = capsys.readouterr().out
        assert main(["stats", "--metrics", str(metrics_file),
                     "--json", str(tmp_path / "s.json")]) == 0
        assert capsys.readouterr().out == plain

    def test_inspect_overview(self, capsys):
        assert main(["inspect", "compress", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "TNV health" in out
        assert "drill down with --site N" in out

    def test_inspect_site_detail(self, capsys):
        assert main(["inspect", "compress", "--scale", "0.1", "--site", "0"]) == 0
        out = capsys.readouterr().out
        assert "TNV contents" in out
        assert "trajectory" in out

    def test_inspect_site_out_of_range(self, capsys):
        assert main(
            ["inspect", "compress", "--scale", "0.1", "--site", "9999"]
        ) == 2
        assert "out of range" in capsys.readouterr().err

    def test_dash_writes_html(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        main(["run", "table-load-values", "--scale", "0.1", "--no-cache",
              "--metrics", str(metrics_file)])
        capsys.readouterr()
        out_file = tmp_path / "dash.html"
        assert main(
            ["dash", "--metrics", str(metrics_file),
             "--bench-dir", str(tmp_path), "-o", str(out_file)]
        ) == 0
        html = out_file.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "repro-stats" in html
        assert str(out_file) in capsys.readouterr().out
