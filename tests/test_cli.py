"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_scale(self):
        args = build_parser().parse_args(["run", "table-load-values", "--scale", "0.5"])
        assert args.experiment == "table-load-values"
        assert args.scale == 0.5

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "go"])
        assert args.variant == "train"
        assert args.kind == "load"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table-load-values" in out
        assert "fig-convergence" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "147.vortex" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "table-benchmarks", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Benchmark" in out

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "table-flying-pigs"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_workload(self, capsys):
        assert main(["profile", "go", "--scale", "0.1", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out

    def test_profile_unknown_workload_fails_cleanly(self, capsys):
        assert main(["profile", "doom"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_other_kind(self, capsys):
        assert main(["profile", "go", "--scale", "0.1", "--kind", "instruction"]) == 0

    def test_diff_command(self, capsys):
        assert main(["diff", "go", "--scale", "0.1", "--min-executions", "5"]) == 0
        out = capsys.readouterr().out
        assert "profile diff" in out
        assert "correlation" in out

    def test_report_command(self, capsys):
        assert main(["report", "gcc", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Value profile report" in out
        assert "Site classification" in out

    def test_run_with_json_export(self, tmp_path, capsys):
        out_file = tmp_path / "data.json"
        assert main(["run", "table-benchmarks", "--scale", "0.1", "--json", str(out_file)]) == 0
        import json

        payload = json.loads(out_file.read_text())
        assert payload["experiment"] == "table-benchmarks"
        assert "compress" in payload["data"]
