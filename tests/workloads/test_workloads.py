"""Cross-validation of every workload against its Python reference.

These are the suite's strongest integration tests: each VPA program is
executed on both input variants and its full output stream must match
the independent pure-Python implementation bit for bit.
"""

import pytest

from repro.isa.machine import run_program
from repro.workloads.registry import all_workloads, get_workload

SCALE = 0.15  # keep the full matrix fast; full scale runs in benchmarks

WORKLOADS = [w.name for w in all_workloads()]


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("variant", ["train", "test"])
def test_output_matches_reference(name, variant):
    workload = get_workload(name)
    dataset = workload.dataset(variant, scale=SCALE)
    result = run_program(workload.program(), input_values=dataset.values)
    assert result.halted
    assert list(result.output) == list(dataset.expected_output)


@pytest.mark.parametrize("name", WORKLOADS)
def test_deterministic_datasets(name):
    workload = get_workload(name)
    first = workload.dataset("train", scale=SCALE)
    second = workload.dataset("train", scale=SCALE)
    assert first.values == second.values
    assert first.expected_output == second.expected_output


@pytest.mark.parametrize("name", WORKLOADS)
def test_train_and_test_differ(name):
    workload = get_workload(name)
    train = workload.dataset("train", scale=SCALE)
    test = workload.dataset("test", scale=SCALE)
    assert train.values != test.values


@pytest.mark.parametrize("name", WORKLOADS)
def test_scale_changes_input_size(name):
    workload = get_workload(name)
    small = workload.dataset("train", scale=0.1)
    large = workload.dataset("train", scale=0.3)
    assert len(large.values) >= len(small.values)


@pytest.mark.parametrize("name", WORKLOADS)
def test_program_has_multiple_procedures(name):
    # Table V.4 (top procedures) needs a real call structure.
    program = get_workload(name).program()
    assert len(program.procedures) >= 3
    assert "main" in program.procedures


@pytest.mark.parametrize("name", WORKLOADS)
def test_program_exercises_loads_and_stores(name):
    workload = get_workload(name)
    dataset = workload.dataset("train", scale=SCALE)
    result = run_program(workload.program(), input_values=dataset.values)
    assert result.dynamic_loads > 0
    assert result.dynamic_stores > 0
    assert result.dynamic_calls > 0


@pytest.mark.parametrize("name", WORKLOADS)
def test_nonempty_output(name):
    workload = get_workload(name)
    dataset = workload.dataset("test", scale=SCALE)
    assert len(dataset.expected_output) >= 1
