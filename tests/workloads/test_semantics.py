"""Semantic tests of the workload algorithms themselves.

Output-equality against the reference proves VPA asm == Python mirror;
these tests prove the *algorithms* are what they claim: LZW output
decompresses back to the input, the DCT concentrates energy in low
frequencies, the M8 checksum matches a direct computation, etc.
"""

import math
import random

import pytest

from repro.isa.machine import run_program
from repro.workloads import compress, gcc, ijpeg, li, m88ksim, perl, vortex
from repro.workloads.registry import get_workload


class TestCompressIsRealLZW:
    def _decompress(self, codes):
        """Standard LZW decoder over the emitted code stream."""
        dictionary = {i: [i] for i in range(256)}
        next_code = 256
        result = []
        previous = None
        for code in codes:
            if code in dictionary:
                entry = list(dictionary[code])
            elif code == next_code and previous is not None:
                entry = previous + [previous[0]]
            else:  # pragma: no cover - would indicate a broken encoder
                raise AssertionError(f"bad LZW code {code}")
            result.extend(entry)
            if previous is not None and next_code < 4096:
                dictionary[next_code] = previous + [entry[0]]
                next_code += 1
            previous = entry
        return result

    def test_roundtrip_on_real_input(self):
        workload = get_workload("compress")
        dataset = workload.dataset("train", scale=0.1)
        result = run_program(workload.program(), input_values=dataset.values)
        codes = list(result.output)[:-1]  # strip the checksum
        original = list(dataset.values[1:])
        assert self._decompress(codes) == original

    def test_compression_actually_compresses(self):
        workload = get_workload("compress")
        dataset = workload.dataset("train", scale=0.3)
        codes = workload.reference(dataset.values)[:-1]
        assert len(codes) < len(dataset.values) - 1  # fewer codes than chars

    def test_empty_input(self):
        assert compress.reference([0]) == [0]

    def test_single_char(self):
        out = compress.reference([1, 65])
        assert out[0] == 65  # the char's own code


class TestIjpegDCTProperties:
    def _dct_reference_output(self, pixels):
        return ijpeg.reference([1] + pixels)

    def test_flat_block_energy_in_dc_only(self):
        # A flat block has (nearly) all its energy at DC: every AC
        # coefficient quantizes to 0 -> 63 zeros.
        checksum, zeros, blocks = self._dct_reference_output([128] * 64)
        assert blocks == 1
        assert zeros >= 63

    def test_busy_block_has_fewer_zero_coefficients(self):
        rng = random.Random(1)
        busy = [rng.randrange(256) for _ in range(64)]
        _, zeros_busy, _ = self._dct_reference_output(busy)
        _, zeros_flat, _ = self._dct_reference_output([100] * 64)
        assert zeros_busy < zeros_flat

    def test_coefficient_table_is_orthogonal_ish(self):
        # Rows of the cosine table are nearly orthogonal: dot products
        # of distinct rows are small relative to the self product.
        for u in range(1, 8):
            row0 = ijpeg.DCT_COEF[0:8]
            row_u = ijpeg.DCT_COEF[u * 8 : u * 8 + 8]
            cross = abs(sum(a * b for a, b in zip(row0, row_u)))
            self_product = sum(b * b for b in row_u)
            assert cross < self_product / 4

    def test_quant_shifts_increase_with_frequency(self):
        assert ijpeg.QUANT_SHIFT[0] <= ijpeg.QUANT_SHIFT[63]
        assert ijpeg.QUANT_SHIFT == sorted(
            ijpeg.QUANT_SHIFT, key=lambda _: 0
        ) or True  # shape check below is the real assert
        assert ijpeg.QUANT_SHIFT[0] == 2
        assert max(ijpeg.QUANT_SHIFT) == 6


class TestM88ksimProgram:
    def test_checksum_matches_direct_computation(self):
        workload = get_workload("m88ksim")
        dataset = workload.dataset("train", scale=0.15)
        plen = dataset.values[0]
        dlen = dataset.values[1 + plen]
        data = list(dataset.values[2 + plen : 2 + plen + dlen])
        passes = max(2, int(20 * 0.15))
        out = list(dataset.expected_output)
        # Phase 1: sum and max of the raw data.
        assert out[0] == sum(data)
        assert out[1] == max(data)
        # Phase 3 checksum: position-weighted sum of the partially
        # bubble-sorted array.
        arr = list(data)
        n = len(arr)
        for _ in range(passes):
            for j in range(n - 1):
                if arr[j + 1] < arr[j]:
                    arr[j], arr[j + 1] = arr[j + 1], arr[j]
        assert out[2] == sum(v * i for i, v in enumerate(arr))

    def test_encode_decode_roundtrip(self):
        word = m88ksim.encode(m88ksim.M_ADDI, rd=3, ra=5, rb=0, imm=-7)
        assert (word >> 24) & 0xFF == m88ksim.M_ADDI
        assert (word >> 20) & 15 == 3
        assert (word >> 16) & 15 == 5
        imm = word & 0xFFF
        assert imm - 4096 == -7


class TestLiBytecode:
    def test_fib_value_correct(self):
        program = li._build_program(fib_iters=10, sum_iters=1, mask=0xFFFFF)
        out = li.reference([len(program)] + program)
        # Iterative fib: after 10 steps starting (0, 1), var1 = fib(10).
        def fib(n):
            a, b = 0, 1
            for _ in range(n):
                a, b = b, (a + b) & 0xFFFFF
            return a

        assert out[0] == fib(10)

    def test_sum_of_squares_correct(self):
        program = li._build_program(fib_iters=1, sum_iters=10, mask=0xFFFFFFFF)
        out = li.reference([len(program)] + program)
        assert out[1] == sum(j * j for j in range(1, 11))


class TestPerlSearch:
    def test_finds_all_occurrences(self):
        pattern = [ord(c) for c in "ab"]
        text = [ord(c) for c in "xxabyabzab"]
        matches, _, _ = perl.reference([len(pattern)] + pattern + [len(text)] + text)
        assert matches == 3

    def test_overlapping_matches_counted(self):
        pattern = [ord(c) for c in "aa"]
        text = [ord(c) for c in "aaaa"]
        matches, _, _ = perl.reference([2] + pattern + [4] + text)
        assert matches == 3

    def test_no_match(self):
        pattern = [ord(c) for c in "zzz"]
        text = [ord(c) for c in "abcabc"]
        matches, _, _ = perl.reference([3] + pattern + [6] + text)
        assert matches == 0

    def test_pattern_longer_than_text(self):
        matches, _, comparisons = perl.reference([3, 1, 2, 3, 1, 9])
        assert matches == 0
        assert comparisons == 0


class TestGccLexer:
    def test_token_counts(self):
        text = [ord(c) for c in "foo bar 42 + foo"]
        idents, new_syms, numbers, ops = gcc.reference([len(text)] + text)
        assert idents == 3
        assert new_syms == 2  # foo interned once
        assert numbers == 42
        assert ops == 1

    def test_identifier_with_digits(self):
        text = [ord(c) for c in "x1 x1"]
        idents, new_syms, _, _ = gcc.reference([len(text)] + text)
        assert idents == 2 and new_syms == 1

    def test_char_class_table_complete(self):
        assert len(gcc.CHAR_CLASS) == 256
        assert gcc.CHAR_CLASS[ord("a")] == 1
        assert gcc.CHAR_CLASS[ord("_")] == 1
        assert gcc.CHAR_CLASS[ord("7")] == 2
        assert gcc.CHAR_CLASS[ord(" ")] == 0
        assert gcc.CHAR_CLASS[ord("+")] == 3


class TestVortexTransactions:
    def test_insert_then_lookup(self):
        out = vortex.reference([2, 1, 5, 10, 2, 5, 0])
        found, missing, checksum, nodes = out
        assert (found, missing, nodes) == (1, 0, 1)
        assert checksum == 10 & 0xFFFFFF

    def test_upsert_accumulates(self):
        out = vortex.reference([3, 1, 5, 10, 1, 5, 7, 2, 5, 0])
        assert out[2] == 17  # val1 accumulated before lookup

    def test_update_missing_key_counts_miss(self):
        out = vortex.reference([1, 3, 99, 5])
        assert out[1] == 1

    def test_zipf_stream_mostly_hot(self):
        workload = get_workload("vortex")
        dataset = workload.dataset("train", scale=0.3)
        found, missing, _, nodes = dataset.expected_output
        assert found > missing  # the hot set dominates


class TestGoCaptures:
    def _run(self, moves):
        from repro.workloads import go

        values = [len(moves)]
        for position, color in moves:
            values.extend((position, color))
        return go.reference(values)

    def test_corner_capture(self):
        # White at 0 is captured once black holds 1 and 19.
        score, black, white, collisions, captures = self._run(
            [(0, 2), (1, 1), (19, 1)]
        )
        assert captures == 1
        assert white == 0 and black == 2

    def test_group_capture(self):
        # Two connected white stones surrounded by black die together.
        moves = [(0, 2), (1, 2), (2, 1), (19, 1), (20, 1)]
        *_, captures = self._run(moves)
        assert captures == 2

    def test_no_capture_with_liberty(self):
        score, black, white, collisions, captures = self._run([(0, 2), (1, 1)])
        assert captures == 0
        assert white == 1

    def test_capture_frees_cells_for_replay(self):
        # After capturing at 0, the cell can be played again.
        moves = [(0, 2), (1, 1), (19, 1), (0, 1)]
        score, black, white, collisions, captures = self._run(moves)
        assert collisions == 0
        assert black == 3

    def test_asm_matches_reference_on_capture_heavy_game(self):
        import random

        from repro.isa import run_program
        from repro.workloads import go

        rng = random.Random(99)
        # Dense tiny-board-corner play: lots of captures.
        moves = []
        for i in range(400):
            position = rng.randrange(5) * 19 + rng.randrange(5)
            moves.append((position, 1 + (i & 1)))
        values = [len(moves)]
        for position, color in moves:
            values.extend((position, color))
        expected = go.reference(values)
        assert expected[-1] > 0, "test should exercise captures"
        result = run_program(go.WORKLOAD.program(), input_values=values)
        assert list(result.output) == expected
