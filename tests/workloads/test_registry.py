"""Tests for the workload registry."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workloads.registry import (
    Workload,
    all_workloads,
    get_workload,
    register,
    unregister,
    workload_names,
)


class TestRegistry:
    def test_eight_workloads_registered(self):
        assert len(all_workloads()) == 8

    def test_expected_names(self):
        assert workload_names() == [
            "compress",
            "gcc",
            "go",
            "ijpeg",
            "li",
            "m88ksim",
            "perl",
            "vortex",
        ]

    def test_get_unknown_raises_with_known_list(self):
        with pytest.raises(WorkloadError) as excinfo:
            get_workload("spice")
        assert "compress" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        existing = get_workload("compress")
        with pytest.raises(WorkloadError):
            register(existing)

    def test_all_have_spec_analogues(self):
        for workload in all_workloads():
            assert workload.spec_analogue
            assert workload.description


class TestDatasets:
    def test_unknown_variant_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("go").dataset("validation")

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("go").dataset("train", scale=0)

    def test_dataset_name(self):
        dataset = get_workload("go").dataset("test", scale=0.1)
        assert dataset.name == "go.test"

    def test_program_cached(self):
        workload = get_workload("perl")
        assert workload.program() is workload.program()


class TestCustomWorkload:
    def test_register_and_run_custom(self):
        custom = Workload(
            name="echo-test",
            spec_analogue="(none)",
            description="echoes its input",
            build_source=lambda: (
                ".text\n.proc main nargs=0\nin r1\nout r1\nhalt\n.endproc\n"
            ),
            make_input=lambda variant, scale, rng: [rng.randrange(100)],
            reference=lambda values: [values[0]],
        )
        register(custom)
        try:
            dataset = custom.dataset("train")
            from repro.isa.machine import run_program

            result = run_program(custom.program(), input_values=dataset.values)
            assert list(result.output) == list(dataset.expected_output)
        finally:
            unregister("echo-test")
