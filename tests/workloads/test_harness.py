"""Tests for the workload profiling harness."""

import pytest

from repro.core.profile import TNVConfig
from repro.core.sampling import PeriodicSampling
from repro.core.sites import SiteKind
from repro.errors import WorkloadError
from repro.isa.instrument import ProfileTarget
from repro.workloads.harness import profile_workload, run_workload, trace_workload

SCALE = 0.1


class TestProfileWorkload:
    def test_default_targets(self):
        run = profile_workload("go", scale=SCALE)
        assert run.database.sites(SiteKind.LOAD)
        assert run.database.sites(SiteKind.INSTRUCTION)

    def test_output_verified_against_reference(self):
        run = profile_workload("go", scale=SCALE)
        assert list(run.result.output) == list(run.dataset.expected_output)

    def test_restricted_targets(self):
        run = profile_workload("go", scale=SCALE, targets=(ProfileTarget.MEMORY,))
        assert run.database.sites(SiteKind.MEMORY)
        assert not run.database.sites(SiteKind.LOAD)

    def test_custom_tnv_config(self):
        config = TNVConfig(capacity=4, steady=2, clear_interval=64)
        run = profile_workload("go", scale=SCALE, config=config)
        profile = next(iter(run.database))
        assert profile.tnv.capacity == 4

    def test_tnv_only_mode(self):
        run = profile_workload("go", scale=SCALE, exact=False)
        profile = next(iter(run.database))
        assert profile.exact is None

    def test_sampled_profiling(self):
        run = profile_workload(
            "go", scale=SCALE, policy=PeriodicSampling(burst=10, interval=100)
        )
        assert run.sampler is not None
        assert 0.0 < run.sampler.overhead() < 1.0
        assert run.database is run.sampler.database

    def test_run_name_includes_variant(self):
        run = profile_workload("go", "test", scale=SCALE)
        assert run.name == "go.test"

    def test_load_counts_match_machine(self):
        run = profile_workload("go", scale=SCALE, targets=(ProfileTarget.LOADS,))
        assert run.database.total_executions(SiteKind.LOAD) == run.result.dynamic_loads


class TestRunWorkload:
    def test_runs_and_verifies(self):
        result = run_workload("perl", scale=SCALE)
        assert result.halted

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            run_workload("unknown", scale=SCALE)


class TestTraceWorkload:
    def test_traces_match_profile_counts(self):
        traces = trace_workload("go", scale=SCALE, targets=(ProfileTarget.LOADS,))
        run = profile_workload("go", scale=SCALE, targets=(ProfileTarget.LOADS,))
        for site, trace in traces.items():
            assert len(trace) == run.database.profile_for(site).executions

    def test_max_per_site(self):
        traces = trace_workload(
            "go", scale=SCALE, targets=(ProfileTarget.LOADS,), max_per_site=5
        )
        assert all(len(trace) <= 5 for trace in traces.values())
