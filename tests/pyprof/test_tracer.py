"""Tests for the call-level Python profiler."""

import pytest

from repro.core.sites import SiteKind
from repro.pyprof.tracer import FunctionProfiler, profile_calls


def target_function(a, b):
    return a + b


def varied(a):
    return a % 3


class TestProfileCalls:
    def test_arguments_and_return_profiled(self):
        db = profile_calls(target_function, [(1, 2), (1, 3)])
        labels = {site.label for site in db.sites()}
        assert labels == {"arg0:a", "arg1:b", "return"}

    def test_invariance_of_constant_argument(self):
        db = profile_calls(target_function, [(7, i) for i in range(10)])
        site = next(s for s in db.sites() if s.label == "arg0:a")
        assert db.profile_for(site).metrics().inv_top1 == 1.0

    def test_return_distribution(self):
        db = profile_calls(varied, [(i,) for i in range(30)])
        site = next(s for s in db.sites() if s.label == "return")
        metrics = db.profile_for(site).metrics()
        assert metrics.distinct == 3
        assert metrics.inv_top1 == pytest.approx(1 / 3, abs=0.05)

    def test_unhashable_arguments_profiled_by_type(self):
        db = profile_calls(len, [([1, 2],)]) if False else profile_calls(
            target_function, [([1], [2])]
        )
        site = next(s for s in db.sites() if s.label == "arg0:a")
        assert db.profile_for(site).tnv.top_value() == "<list>"

    def test_sites_python_kind(self):
        db = profile_calls(target_function, [(1, 2)])
        assert all(site.kind is SiteKind.PYTHON for site in db.sites())


class TestFunctionProfiler:
    def test_context_manager_profiles_matching_functions(self):
        profiler = FunctionProfiler(match=lambda name: name.endswith("target_function"))
        with profiler:
            for i in range(5):
                target_function(3, i)
            varied(1)  # filtered out
        functions = {site.procedure for site in profiler.database.sites()}
        assert functions == {"target_function"}

    def test_records_argument_values(self):
        profiler = FunctionProfiler(match=lambda name: name.endswith("target_function"))
        with profiler:
            target_function(9, 1)
            target_function(9, 2)
        site = next(
            s for s in profiler.database.sites() if s.label == "arg0:a"
        )
        assert profiler.database.profile_for(site).tnv.top_value() == 9

    def test_return_values_recorded(self):
        profiler = FunctionProfiler(match=lambda name: name.endswith("varied"))
        with profiler:
            varied(4)
        labels = {site.label for site in profiler.database.sites()}
        assert "return" in labels

    def test_stop_is_idempotent(self):
        profiler = FunctionProfiler()
        profiler.start()
        profiler.stop()
        profiler.stop()

    def test_nothing_recorded_outside_context(self):
        profiler = FunctionProfiler(match=lambda name: name.endswith("varied"))
        with profiler:
            pass
        varied(1)
        assert len(profiler.database) == 0
