"""Tests for AST-level instrumentation of Python functions."""

import pytest

from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind
from repro.errors import ProfileError
from repro.pyprof.ast_instrument import instrument_function


def simple(x):
    y = x + 1
    return y * 2


def with_loop(n):
    total = 0
    for i in range(n):
        total += i
    return total


def with_branches(flag):
    if flag:
        result = 1
    else:
        result = 2
    return result


def with_annotation(x):
    y: int = x * 3
    return y


def with_nested(x):
    def inner(v):
        return v + 1

    y = inner(x)
    return y


def unhashable_assign(n):
    data = [0] * n
    return len(data)


class TestBehaviourPreserved:
    @pytest.mark.parametrize(
        "func,args",
        [
            (simple, (5,)),
            (with_loop, (10,)),
            (with_branches, (True,)),
            (with_branches, (False,)),
            (with_annotation, (4,)),
            (with_nested, (7,)),
            (unhashable_assign, (3,)),
        ],
    )
    def test_results_identical(self, func, args):
        clone = instrument_function(func)
        assert clone(*args) == func(*args)

    def test_wrapped_reference_kept(self):
        clone = instrument_function(simple)
        assert clone.__wrapped__ is simple


class TestRecording:
    def test_assignments_recorded(self):
        clone = instrument_function(simple)
        clone(5)
        labels = {site.label for site in clone.__vp_database__.sites()}
        assert "y" in labels and "return" in labels

    def test_loop_variable_recorded(self):
        clone = instrument_function(with_loop)
        clone(5)
        db = clone.__vp_database__
        site = next(s for s in db.sites() if s.label == "i")
        assert db.profile_for(site).executions == 5

    def test_augassign_recorded(self):
        clone = instrument_function(with_loop)
        clone(4)
        db = clone.__vp_database__
        site = next(s for s in db.sites() if s.label == "total")
        # one initial assignment + one probe per loop iteration
        assert db.profile_for(site).executions == 5

    def test_return_values_profiled(self):
        clone = instrument_function(simple)
        for _ in range(10):
            clone(1)
        db = clone.__vp_database__
        site = next(s for s in db.sites() if s.label == "return")
        assert db.profile_for(site).metrics().inv_top1 == 1.0

    def test_sites_are_python_kind(self):
        clone = instrument_function(simple)
        clone(1)
        assert all(s.kind is SiteKind.PYTHON for s in clone.__vp_database__.sites())

    def test_unhashable_values_recorded_by_type(self):
        clone = instrument_function(unhashable_assign)
        clone(3)
        db = clone.__vp_database__
        site = next(s for s in db.sites() if s.label == "data")
        assert db.profile_for(site).tnv.top_value() == "<list>"

    def test_shared_database(self):
        db = ProfileDatabase(name="shared")
        a = instrument_function(simple, database=db)
        b = instrument_function(with_loop, database=db)
        a(1)
        b(3)
        functions = {site.procedure for site in db.sites()}
        assert {"simple", "with_loop"} <= functions

    def test_nested_function_not_instrumented(self):
        clone = instrument_function(with_nested)
        clone(1)
        labels = {site.label for site in clone.__vp_database__.sites()}
        assert "v" not in labels  # inner() body untouched


class TestErrors:
    def test_closure_rejected(self):
        captured = 5

        def closure(x):
            return x + captured

        with pytest.raises(ProfileError):
            instrument_function(closure)

    def test_builtin_rejected(self):
        with pytest.raises(ProfileError):
            instrument_function(len)
