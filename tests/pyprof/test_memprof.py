"""Tests for memory-location profiling wrappers."""

import pytest

from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind
from repro.pyprof.memprof import ProfiledDict, ProfiledList, profile_attributes


class TestProfiledDict:
    def test_behaves_like_dict(self):
        d = ProfiledDict({"a": 1})
        d["b"] = 2
        assert d == {"a": 1, "b": 2}

    def test_stores_recorded_per_key(self):
        d = ProfiledDict(name="cfg")
        for _ in range(5):
            d["mode"] = 3
        d["other"] = 1
        sites = d.database.sites(SiteKind.MEMORY)
        assert len(sites) == 2
        mode_site = next(s for s in sites if s.label == "'mode'")
        assert d.database.profile_for(mode_site).executions == 5

    def test_invariance_of_stable_key(self):
        d = ProfiledDict()
        for i in range(20):
            d["k"] = 7 if i < 18 else 9
        site = d.database.sites(SiteKind.MEMORY)[0]
        assert d.database.profile_for(site).metrics().inv_top1 == pytest.approx(0.9)

    def test_update_profiles_stores(self):
        d = ProfiledDict()
        d.update({"x": 1, "y": 2})
        assert len(d.database.sites(SiteKind.MEMORY)) == 2

    def test_setdefault_profiles_only_new(self):
        d = ProfiledDict()
        d.setdefault("k", 1)
        d.setdefault("k", 2)  # existing: no store
        site = d.database.sites(SiteKind.MEMORY)[0]
        assert d.database.profile_for(site).executions == 1

    def test_constructor_items_not_profiled(self):
        d = ProfiledDict({"seed": 1})
        assert len(d.database) == 0

    def test_shared_database(self):
        db = ProfileDatabase()
        d1 = ProfiledDict(name="a", database=db)
        d2 = ProfiledDict(name="b", database=db)
        d1["k"] = 1
        d2["k"] = 2
        assert len(db.sites(SiteKind.MEMORY)) == 2

    def test_unhashable_values_recorded_by_type(self):
        d = ProfiledDict()
        d["k"] = [1, 2]
        site = d.database.sites(SiteKind.MEMORY)[0]
        assert d.database.profile_for(site).tnv.top_value() == "<list>"


class TestProfiledList:
    def test_behaves_like_list(self):
        values = ProfiledList([1, 2, 3])
        values[1] = 9
        assert list(values) == [1, 9, 3]

    def test_stores_recorded_per_index(self):
        values = ProfiledList([0, 0, 0])
        values[0] = 5
        values[0] = 5
        values[2] = 1
        sites = values.database.sites(SiteKind.MEMORY)
        assert {s.label for s in sites} == {"0", "2"}

    def test_negative_index_normalized(self):
        values = ProfiledList([0, 0, 0])
        values[-1] = 7
        site = values.database.sites(SiteKind.MEMORY)[0]
        assert site.label == "2"

    def test_slice_assignment_not_profiled_but_works(self):
        values = ProfiledList([1, 2, 3, 4])
        values[1:3] = [9, 9]
        assert list(values) == [1, 9, 9, 4]
        assert len(values.database) == 0

    def test_append_not_a_store(self):
        values = ProfiledList()
        values.append(1)
        assert len(values.database) == 0


class TestProfileAttributes:
    def test_attribute_stores_recorded(self):
        @profile_attributes()
        class Point:
            def __init__(self, x, y):
                self.x = x
                self.y = y

        for i in range(10):
            Point(5, i)
        db = Point.__vp_database__
        x_site = next(s for s in db.sites() if s.label == "x")
        y_site = next(s for s in db.sites() if s.label == "y")
        assert db.profile_for(x_site).metrics().inv_top1 == 1.0
        assert db.profile_for(y_site).metrics().inv_top1 < 0.5

    def test_attributes_shared_across_instances(self):
        @profile_attributes()
        class Counter:
            def __init__(self):
                self.n = 0

        a, b = Counter(), Counter()
        a.n = 1
        b.n = 1
        db = Counter.__vp_database__
        site = db.sites()[0]
        assert db.profile_for(site).executions == 4  # 2 inits + 2 stores

    def test_instances_still_work(self):
        @profile_attributes()
        class Box:
            def __init__(self, v):
                self.v = v

        box = Box(3)
        box.v = 4
        assert box.v == 4

    def test_custom_name(self):
        @profile_attributes(name="custom")
        class Thing:
            def __init__(self):
                self.a = 1

        Thing()
        assert Thing.__vp_database__.sites()[0].program == "custom"
