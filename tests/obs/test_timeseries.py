"""Tests for the time-series collector.

The collector's contract: disabled is a no-op (the event clock does not
even advance), enabled it samples the registry's comparable sections on
interval crossings only, the ring bounds memory by dropping the oldest
sample, and merge is associative/commutative on the shared (tick, name)
grid so ``--jobs N`` yields one coherent series regardless of merge
order.
"""

import json

import pytest

from repro.obs.metrics import METRICS
from repro.obs.timeseries import (
    TIMESERIES,
    TimeSeriesCollector,
    load_series,
    render_prometheus,
)


@pytest.fixture
def collector():
    col = TimeSeriesCollector()
    col.enable(interval=10, capacity=8)
    return col


@pytest.fixture
def registry():
    """The process-wide registry, enabled and restored around the test."""
    METRICS.reset()
    METRICS.enable()
    yield METRICS
    METRICS.disable()
    METRICS.reset()


class TestDisabled:
    def test_disabled_by_default(self):
        assert not TimeSeriesCollector().enabled

    def test_disabled_advance_is_noop(self):
        col = TimeSeriesCollector()
        col.advance(10_000_000)
        assert col.events == 0
        assert len(col) == 0

    def test_disabled_sample_is_noop(self):
        col = TimeSeriesCollector()
        col.sample()
        assert len(col) == 0

    def test_disabled_merge_is_noop(self):
        col = TimeSeriesCollector()
        col.merge({"samples": [{"tick": 1, "counters": {"x": 1}, "gauges": {}}]})
        assert len(col) == 0

    def test_enable_validates_arguments(self):
        col = TimeSeriesCollector()
        with pytest.raises(ValueError):
            col.enable(interval=0)
        with pytest.raises(ValueError):
            col.enable(capacity=0)


class TestSampling:
    def test_samples_on_interval_crossing(self, collector, registry):
        registry.inc("events", 7)
        collector.advance(9)
        assert len(collector) == 0  # below the interval: no sample yet
        collector.advance(1)
        assert len(collector) == 1
        (sample,) = collector.samples()
        assert sample["tick"] == 10
        assert sample["counters"]["events"] == 7

    def test_one_boundary_crossing_many_intervals_samples_once(self, collector):
        collector.advance(1_000)  # 100 intervals in one batch boundary
        assert len(collector) == 1

    def test_ring_drops_oldest(self, registry):
        col = TimeSeriesCollector()
        col.enable(interval=1, capacity=3)
        for _ in range(5):
            col.advance(1)
        assert len(col) == 3
        assert col.dropped == 2
        assert [s["tick"] for s in col.samples()] == [3, 4, 5]

    def test_samples_key_sorted(self, collector, registry):
        registry.inc("zebra")
        registry.inc("alpha")
        collector.advance(10)
        (sample,) = collector.samples()
        assert list(sample["counters"]) == sorted(sample["counters"])

    def test_series_extracts_one_name(self, collector, registry):
        for round_index in range(3):
            registry.inc("events", 5)
            registry.gauge("depth", round_index)
            collector.advance(10)
        assert collector.series("events") == [(10, 5), (20, 10), (30, 15)]
        assert collector.series("depth") == [(10, 0), (20, 1), (30, 2)]
        assert collector.series("missing") == []


class TestMerge:
    @staticmethod
    def _payload(tick, counters, gauges=None, events=None):
        return {
            "interval": 10,
            "events": events if events is not None else tick,
            "dropped": 0,
            "samples": [{"tick": tick, "counters": counters, "gauges": gauges or {}}],
        }

    def test_counters_add_on_shared_tick(self, collector):
        collector.merge(self._payload(10, {"events": 3}))
        collector.merge(self._payload(10, {"events": 4}))
        assert collector.series("events") == [(10, 7)]

    def test_gauges_take_max_on_shared_tick(self, collector):
        collector.merge(self._payload(10, {}, gauges={"peak": 5}))
        collector.merge(self._payload(10, {}, gauges={"peak": 3}))
        assert collector.series("peak") == [(10, 5)]

    def test_merge_is_associative_and_commutative(self):
        payloads = [
            self._payload(10, {"events": 1}, gauges={"peak": 2}),
            self._payload(10, {"events": 5}, gauges={"peak": 9}),
            self._payload(20, {"events": 3}, gauges={"peak": 1}),
        ]
        import itertools

        rendered = set()
        for order in itertools.permutations(payloads):
            col = TimeSeriesCollector()
            col.enable(interval=10)
            for payload in order:
                col.merge(payload)
            rendered.add(json.dumps(col.samples(), sort_keys=True))
        assert len(rendered) == 1  # every merge order yields one series

    def test_merge_takes_max_events_and_sums_dropped(self, collector):
        collector.advance(10)
        collector.merge(
            {"interval": 10, "events": 50, "dropped": 2, "samples": []}
        )
        assert collector.events == 50
        assert collector.dropped == 2

    def test_payload_roundtrip(self, collector, registry):
        registry.inc("events", 2)
        collector.advance(10)
        other = TimeSeriesCollector()
        other.enable(interval=10)
        other.merge(collector.to_payload())
        assert other.samples() == collector.samples()


class TestExporters:
    def test_jsonl_roundtrip(self, collector, registry, tmp_path):
        registry.inc("events", 2)
        collector.advance(10)
        path = tmp_path / "series.jsonl"
        collector.write_jsonl(str(path))
        assert load_series(str(path)) == collector.samples()

    def test_load_series_missing_file(self, tmp_path):
        assert load_series(str(tmp_path / "nope.jsonl")) is None

    def test_load_series_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        assert load_series(str(path)) is None

    def test_prometheus_format(self):
        text = render_prometheus(
            [
                {"tick": 10, "counters": {"cache.misses": 3}, "gauges": {"pool size": 2}},
                {"tick": 20, "counters": {"cache.misses": 5}, "gauges": {}},
            ]
        )
        lines = text.splitlines()
        assert "# TYPE repro_cache_misses counter" in lines
        assert "repro_cache_misses 3 10" in lines
        assert "repro_cache_misses 5 20" in lines
        assert "# TYPE repro_pool_size gauge" in lines
        assert "repro_pool_size 2 10" in lines

    def test_write_prometheus(self, collector, registry, tmp_path):
        registry.inc("events")
        collector.advance(10)
        path = tmp_path / "series.prom"
        collector.write_prometheus(str(path))
        assert path.read_text().startswith("# TYPE repro_events counter")

    def test_prometheus_emits_timers(self):
        """Timers used to be dropped from ``.prom`` output entirely;
        each now expands into count/sum counters and max/min gauges."""
        text = render_prometheus(
            [
                {
                    "tick": 10,
                    "counters": {},
                    "gauges": {},
                    "timers": {
                        "fold": {
                            "count": 2,
                            "total_s": 0.5,
                            "max_s": 0.4,
                            "min_s": 0.1,
                        }
                    },
                }
            ]
        )
        lines = text.splitlines()
        assert "# TYPE repro_fold_seconds_count counter" in lines
        assert "repro_fold_seconds_count 2 10" in lines
        assert "repro_fold_seconds_sum 0.5 10" in lines
        assert "# TYPE repro_fold_seconds_max gauge" in lines
        assert "repro_fold_seconds_max 0.4 10" in lines
        assert "repro_fold_seconds_min 0.1 10" in lines

    def test_prometheus_timers_tolerate_missing_min(self):
        """Payloads written before timers carried ``min_s`` still render
        (min falls back to max rather than KeyError-ing the export)."""
        text = render_prometheus(
            [
                {
                    "tick": 5,
                    "counters": {},
                    "gauges": {},
                    "timers": {"fold": {"count": 1, "total_s": 0.2, "max_s": 0.2}},
                }
            ]
        )
        assert "repro_fold_seconds_min 0.2 5" in text.splitlines()

    def test_prometheus_emits_final_histogram(self):
        from repro.obs.hist import Histogram

        early, late = Histogram("latency"), Histogram("latency")
        early.observe(1e-6)
        late.observe(1e-6)
        late.observe(1e-3)
        text = render_prometheus(
            [
                {"tick": 10, "counters": {}, "gauges": {}, "hists": {"lat": early.snapshot()}},
                {"tick": 20, "counters": {}, "gauges": {}, "hists": {"lat": late.snapshot()}},
            ]
        )
        lines = text.splitlines()
        assert "# TYPE repro_lat histogram" in lines
        # only the final (cumulative) sample renders: count is 2, not 3
        assert 'repro_lat_bucket{le="+Inf"} 2' in lines
        assert "repro_lat_count 2" in lines


class TestTimingSections:
    def test_sample_carries_timers_and_hists(self, collector, registry):
        with registry.time("fold"):
            pass
        registry.observe_hist("lat", 1e-4)
        collector.advance(10)
        (sample,) = collector.samples()
        assert sample["timers"]["fold"]["count"] == 1
        assert sample["hists"]["lat"]["count"] == 1

    def test_sections_absent_when_empty(self, collector, registry):
        registry.inc("events")
        collector.advance(10)
        (sample,) = collector.samples()
        assert "timers" not in sample
        assert "hists" not in sample

    def test_combine_folds_timers_and_hists_on_shared_tick(self, collector):
        from repro.obs.hist import Histogram

        def payload(total_s, max_s, min_s, lat_value):
            hist = Histogram("latency")
            hist.observe(lat_value)
            return {
                "interval": 10,
                "events": 10,
                "dropped": 0,
                "samples": [
                    {
                        "tick": 10,
                        "counters": {},
                        "gauges": {},
                        "timers": {
                            "fold": {
                                "count": 1,
                                "total_s": total_s,
                                "max_s": max_s,
                                "min_s": min_s,
                            }
                        },
                        "hists": {"lat": hist.snapshot()},
                    }
                ],
            }

        collector.merge(payload(0.2, 0.2, 0.2, 1e-5))
        collector.merge(payload(0.3, 0.3, 0.3, 1e-2))
        (sample,) = collector.samples()
        fold = sample["timers"]["fold"]
        assert fold["count"] == 2
        assert fold["total_s"] == pytest.approx(0.5)
        assert fold["max_s"] == 0.3
        assert fold["min_s"] == 0.2
        assert sample["hists"]["lat"]["count"] == 2


class TestParallelMerge:
    def test_jobs_2_yields_one_merged_series(self, registry):
        """``--jobs 2`` acceptance: workers run their own collectors and
        the parent folds every payload into one coherent series."""
        from repro.analysis import experiments
        from repro.analysis.parallel import run_experiments

        # Fork-started workers inherit this process's L1 memo; start
        # cold so they actually simulate (and so advance the clock).
        experiments.clear_caches()
        TIMESERIES.enable(interval=1_000)
        try:
            with experiments.caching_disabled():
                results = run_experiments(
                    ["table-load-values", "table-top-procedures"],
                    scale=0.05,
                    jobs=2,
                    use_cache=False,
                )
            assert len(results) == 2
            assert len(TIMESERIES) > 0  # both workers' samples merged home
            assert TIMESERIES.events > 0
            samples = TIMESERIES.samples()
            assert [s["tick"] for s in samples] == sorted(s["tick"] for s in samples)
        finally:
            TIMESERIES.disable()
            TIMESERIES.reset()
