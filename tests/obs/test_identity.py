"""Observability must never change what the experiments compute.

The whole layer's founding contract (docs/observability.md): metrics,
tracing, time series, and the flight recorder watch the run — they do
not participate in it.  These tests pin that down by rendering the
same deterministic experiment with everything off, everything on, and
everything off again, and requiring byte-identical text throughout.
"""

import pytest

from repro.analysis import experiments
from repro.obs import METRICS, TRACER
from repro.obs.flight import FLIGHT
from repro.obs.timeseries import TIMESERIES

EXPERIMENT = "table-load-values"
SCALE = 0.05


def _render() -> str:
    experiments.clear_caches()
    with experiments.caching_disabled():
        return experiments.run(EXPERIMENT, scale=SCALE).text


@pytest.fixture
def full_observability():
    METRICS.reset()
    METRICS.enable()
    TRACER.enable()
    TIMESERIES.enable(interval=1_000)
    FLIGHT.enable(capacity=1_024)
    yield
    METRICS.disable()
    METRICS.reset()
    TRACER.disable()
    TRACER.drain()
    TIMESERIES.disable()
    TIMESERIES.reset()
    FLIGHT.disable()
    FLIGHT.reset()


def test_output_identical_with_observability_on_and_off(full_observability):
    baseline = _render()

    METRICS.disable()
    TRACER.disable()
    TIMESERIES.disable()
    FLIGHT.disable()
    disabled = _render()

    assert disabled == baseline

    METRICS.enable()
    TRACER.enable()
    TIMESERIES.enable(interval=1_000)
    FLIGHT.enable(capacity=1_024)
    observed = _render()

    assert observed == baseline
    # ... and the instrumentation did actually watch the observed run.
    assert TIMESERIES.events > 0
    assert FLIGHT.total_events > 0


def test_disabled_observability_leaves_no_trace_state():
    """With everything at the defaults, a run records nothing at all:
    the pre-observability output is reproduced with zero side bands."""
    text = _render()
    assert text.strip()
    assert METRICS.snapshot() == {"counters": {}, "gauges": {}, "timers": {}, "hists": {}}
    assert len(TIMESERIES) == 0 and TIMESERIES.events == 0
    assert FLIGHT.total_events == 0
