"""Unit tests for the tier-2 specialization journal (repro.obs.jitlog)."""

import json

import pytest

from repro.obs.jitlog import DEFAULT_CAPACITY, EVENT_TYPES, JitLog, load_jitlog
from repro.obs.metrics import METRICS


@pytest.fixture(autouse=True)
def _clean_metrics():
    METRICS.disable()
    METRICS.reset()
    yield
    METRICS.disable()
    METRICS.reset()


def _log(capacity=DEFAULT_CAPACITY) -> JitLog:
    log = JitLog()
    log.enable(capacity=capacity)
    return log


def test_emit_records_typed_events_in_order():
    log = _log()
    log.emit("hot", 10, "p", 4, count=8)
    log.emit("quicken", 11, "p", 4, mode="guarded", bindings=[[3, 7]])
    events = log.events()
    assert [e["seq"] for e in events] == [0, 1]
    assert [e["type"] for e in events] == ["hot", "quicken"]
    assert events[0] == {"seq": 0, "clock": 10, "type": "hot",
                         "program": "p", "block": 4, "count": 8}
    assert log.counts == {"hot": 1, "quicken": 1}
    assert log.total_events == 2
    assert log.dropped == 0


def test_unknown_event_type_fails_loudly():
    log = _log()
    with pytest.raises(ValueError, match="unknown jitlog event type"):
        log.emit("quickened", 0, "p", 0)


def test_ring_is_bounded_and_counts_drops():
    log = _log(capacity=4)
    for i in range(10):
        log.emit("deopt", i, "p", i)
    assert len(log) == 4
    assert log.total_events == 10
    assert log.dropped == 6
    # Oldest events drop first; seq numbering survives the trim.
    assert [e["seq"] for e in log.events()] == [6, 7, 8, 9]
    assert log.counts["deopt"] == 10


def test_enable_rejects_silly_capacity():
    log = JitLog()
    with pytest.raises(ValueError, match="capacity"):
        log.enable(capacity=0)


def test_disable_keeps_ring_readable():
    log = _log()
    log.emit("hot", 1, "p", 0)
    log.disable()
    assert not log.enabled
    assert len(log) == 1
    # Re-enabling resets for a fresh run.
    log.enable()
    assert len(log) == 0


def test_emit_bumps_metrics_counters_when_enabled():
    METRICS.reset()
    METRICS.enable()
    log = _log()
    log.emit("guard_fail", 5, "p", 2, reg=3, expected=1, observed=2)
    log.emit("guard_fail", 6, "p", 2, reg=3, expected=1, observed=9)
    snapshot = METRICS.snapshot()
    assert snapshot["counters"]["machine.tier2.jitlog.guard_fail"] == 2


def test_jsonl_round_trip(tmp_path):
    log = _log()
    log.emit("hot", 1, "p", 0, count=8)
    log.emit("quicken", 2, "p", 0, mode="fused", bindings=[])
    path = str(tmp_path / "jitlog.jsonl")
    log.write_jsonl(path, reason="test")
    header, events = load_jitlog(path)
    assert header["jitlog"] is True
    assert header["reason"] == "test"
    assert header["total_events"] == 2
    assert header["retained"] == 2
    assert header["dropped"] == 0
    assert header["counts"] == {"hot": 1, "quicken": 1}
    assert events == log.events()


def test_jsonl_is_byte_stable(tmp_path):
    a, b = _log(), _log()
    for log in (a, b):
        log.emit("hot", 1, "p", 0, count=8, unstable=[2, 5])
        log.emit("reject", 1, "p", 0, reason="benefit", net=-1.5)
    pa, pb = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    a.write_jsonl(pa)
    b.write_jsonl(pb)
    assert open(pa, "rb").read() == open(pb, "rb").read()
    # Every line is sorted-keys JSON.
    for line in open(pa):
        record = json.loads(line)
        assert list(record) == sorted(record)


def test_merge_resequences_and_folds_counts():
    parent, worker = _log(), _log()
    parent.emit("hot", 1, "p", 0)
    worker.emit("hot", 5, "q", 2)
    worker.emit("deopt", 6, "q", 2, fails=3)
    parent.merge(worker.to_payload())
    events = parent.events()
    assert [e["seq"] for e in events] == [0, 1, 2]
    assert [e["program"] for e in events] == ["p", "q", "q"]
    # Worker clocks are preserved (worker-local event clocks are
    # deterministic in their own right).
    assert events[1]["clock"] == 5
    assert parent.counts == {"hot": 2, "deopt": 1}
    assert parent.total_events == 3


def test_merge_carries_worker_drops():
    parent, worker = _log(), _log(capacity=2)
    for i in range(5):
        worker.emit("deopt", i, "q", 0)
    parent.merge(worker.to_payload())
    assert len(parent) == 2
    assert parent.total_events == 5
    assert parent.dropped == 3


def test_merge_in_fixed_order_is_deterministic():
    def worker(name):
        log = _log()
        log.emit("quicken", 1, name, 0, mode="fused")
        return log.to_payload()

    payloads = [worker("a"), worker("b"), worker("c")]
    one, two = _log(), _log()
    for payload in payloads:
        one.merge(payload)
    for payload in payloads:
        two.merge(payload)
    assert one.events() == two.events()


def test_write_map_reflects_final_block_shape(tmp_path):
    log = _log()
    log.emit("quicken", 1, "p", 16, mode="guarded", pc_range=[16, 23],
             fused=8, bindings=[[3, 7], [5, 1]])
    log.emit("requicken", 2, "p", 16, bindings=[[3, 9]])
    log.emit("quicken", 3, "p", 40, mode="fused", pc_range=[40, 44],
             fused=5, bindings=[])
    log.emit("despecialize", 4, "p", 40, requickens=2)
    path = str(tmp_path / "jit.map")
    log.write_map(path)
    lines = open(path).read().splitlines()
    assert lines == [
        f"{16:x} {8:x} t2_p_b16_guarded1",
        f"{40:x} {5:x} t2_p_b40_fused0",
    ]


def test_event_types_catalog_is_closed():
    # The taxonomy the docs promise; a new event type must update both.
    assert EVENT_TYPES == {
        "hot", "quicken", "reject", "guard_fail", "deopt",
        "requicken", "despecialize", "preheat", "cache_hit", "cache_miss",
    }
