"""Tests for the flight recorder.

The recorder's contract: a fixed-size ring that retains the most
recent events (oldest first on read-out), dumps with a provenance
header, and is written automatically by the experiment runner's
exception path so a crashed run leaves its last events on disk.
"""

import json

import pytest

from repro.analysis import experiments
from repro.core.sites import instruction_site
from repro.errors import ExperimentError
from repro.obs.flight import FLIGHT, FlightRecorder, load_flight


@pytest.fixture
def recorder():
    rec = FlightRecorder()
    rec.enable(capacity=4)
    return rec


SITE = instruction_site("prog", "main", 0, "add")
OTHER = instruction_site("prog", "main", 4, "load")


class TestRing:
    def test_disabled_by_default(self):
        assert not FlightRecorder().enabled

    def test_records_in_order(self, recorder):
        recorder.record(SITE, 1)
        recorder.record(SITE, 2)
        assert recorder.events() == [(0, SITE, 1), (1, SITE, 2)]
        assert len(recorder) == 2
        assert recorder.total_events == 2

    def test_overflow_keeps_most_recent(self, recorder):
        for value in range(10):
            recorder.record(SITE, value)
        events = recorder.events()
        assert len(events) == 4  # capacity
        assert [tick for tick, _, _ in events] == [6, 7, 8, 9]
        assert [value for _, _, value in events] == [6, 7, 8, 9]
        assert recorder.total_events == 10

    def test_record_batch(self, recorder):
        recorder.record_batch(SITE, [10, 20])
        recorder.record_batch(OTHER, [30])
        assert [(s, v) for _, s, v in recorder.events()] == [
            (SITE, 10),
            (SITE, 20),
            (OTHER, 30),
        ]

    def test_enable_validates_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder().enable(capacity=0)

    def test_reset_rewinds(self, recorder):
        recorder.record(SITE, 1)
        recorder.reset()
        assert recorder.events() == []
        assert recorder.total_events == 0


class TestDump:
    def test_dump_header_and_events(self, recorder, tmp_path):
        for value in range(10):
            recorder.record(SITE, value)
        path = recorder.dump(str(tmp_path / "flight.jsonl"), reason="test")
        header, events = load_flight(path)
        assert header == {
            "flight": True,
            "reason": "test",
            "capacity": 4,
            "total_events": 10,
            "retained": 4,
            "dropped": 6,
        }
        assert [e["value"] for e in events] == [6, 7, 8, 9]
        assert events[0]["site"] == SITE.qualified_name()
        assert events[0]["kind"] == "instruction"
        assert recorder.last_dump == path

    def test_dump_is_valid_jsonl(self, recorder, tmp_path):
        recorder.record(SITE, ("tuple", "value"))  # non-JSON value reprs
        path = recorder.dump(str(tmp_path / "flight.jsonl"))
        for line in open(path):
            json.loads(line)

    def test_dump_on_crash_disabled_returns_none(self):
        assert FlightRecorder().dump_on_crash("anything") is None


class TestCrashDump:
    def test_experiment_raise_dumps_ring(self, tmp_path, monkeypatch):
        """The runner's exception path writes the ring before re-raising."""
        monkeypatch.chdir(tmp_path)

        def exploding(scale):
            FLIGHT.record(SITE, 42)
            raise RuntimeError("mid-run failure")

        experiments._ensure_loaded()
        monkeypatch.setitem(
            experiments._REGISTRY,
            "test-explode",
            experiments.Experiment("test-explode", "boom", "none", "none", exploding),
        )
        FLIGHT.enable(capacity=8)
        try:
            with pytest.raises(RuntimeError, match="mid-run failure"):
                experiments.run("test-explode")
        finally:
            FLIGHT.disable()
            FLIGHT.reset()
        dump = tmp_path / "flight-crash-test-explode.jsonl"
        assert dump.is_file()
        header, events = load_flight(str(dump))
        assert header["reason"] == "crash:test-explode"
        assert events[-1]["value"] == 42
        assert events[-1]["site"] == SITE.qualified_name()

    def test_no_dump_when_disabled(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ExperimentError):
            experiments.run("no-such-experiment")
        assert not list(tmp_path.glob("flight-crash-*.jsonl"))
