"""Tests for the HTML dashboard and the bench-history trail it plots.

The dashboard's contract: self-contained HTML (inline CSS/SVG, no
external references) rendered from whichever artifacts exist, a bench
section comparing ``BENCH_history.jsonl`` against the committed
``BENCH_*.json`` baselines, and the same stats payload ``repro stats
--json`` writes embedded for scripting.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

from repro.obs.dash import hbar, render_dashboard, sparkline

REPO = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture
def artifacts(tmp_path):
    """A minimal but complete set of dashboard inputs."""
    metrics = tmp_path / "metrics.json"
    metrics.write_text(
        json.dumps(
            {
                "counters": {
                    "cache.memory_hits": 3,
                    "cache.misses": 1,
                    "machine.instructions": 1_000,
                    "machine.runs": 2,
                },
                "gauges": {},
                "timers": {
                    "experiment.table-load-values": {
                        "count": 1,
                        "total_s": 1.5,
                        "max_s": 1.5,
                        "min_s": 1.5,
                    },
                    "machine.run": {
                        "count": 2,
                        "total_s": 0.5,
                        "max_s": 0.3,
                        "min_s": 0.2,
                    },
                },
            }
        )
    )
    series = tmp_path / "series.jsonl"
    with open(series, "w") as handle:
        for tick in (100, 200, 300):
            handle.write(
                json.dumps(
                    {"tick": tick, "counters": {"machine.instructions": tick * 3}, "gauges": {}}
                )
                + "\n"
            )
    bench_dir = tmp_path / "results"
    bench_dir.mkdir()
    (bench_dir / "BENCH_table-load-values.json").write_text(
        json.dumps({"name": "table-load-values", "mean_s": 1.0, "min_s": 0.9})
    )
    with open(bench_dir / "BENCH_history.jsonl", "w") as handle:
        for value, sha in ((1.00, "aaa1111"), (1.10, "bbb2222")):
            handle.write(
                json.dumps(
                    {
                        "bench": "table-load-values",
                        "metric": "mean_s",
                        "value": value,
                        "git_sha": sha,
                        "timestamp": 0,
                    }
                )
                + "\n"
            )
    return {
        "metrics": str(metrics),
        "timeseries": str(series),
        "bench_dir": str(bench_dir),
    }


class TestPrimitives:
    def test_sparkline_is_inline_svg(self):
        svg = sparkline([1.0, 3.0, 2.0])
        assert svg.startswith("<svg")
        assert "polyline" in svg
        assert "http" not in svg  # no external references

    def test_sparkline_needs_two_points(self):
        assert sparkline([1.0]) == ""

    def test_hbar_clamps(self):
        assert 'class="bar" width="160.0"' in hbar(2.0)
        assert 'class="bar" width="0.0"' in hbar(-1.0)


class TestRenderDashboard:
    def test_no_artifacts(self):
        html = render_dashboard()
        assert "no artifacts to report" in html

    def test_full_render_is_self_contained(self, artifacts):
        html = render_dashboard(
            metrics_path=artifacts["metrics"],
            timeseries_path=artifacts["timeseries"],
            bench_dir=artifacts["bench_dir"],
        )
        assert html.startswith("<!DOCTYPE html>")
        for marker in (
            "Per-experiment wall clock",
            "Cache &amp; replay hit rates",
            "Time series",
            "Bench trajectory vs baselines",
            "repro-stats",
        ):
            assert marker in html
        # Self-contained: no external stylesheet/script/image loads.
        for needle in ("http://", "https://", "<link", "src="):
            assert needle not in html

    def test_bench_delta_against_baseline(self, artifacts):
        html = render_dashboard(bench_dir=artifacts["bench_dir"])
        assert "+10.0%" in html  # 1.10 latest vs 1.00 baseline
        assert "bbb2222" in html

    def test_embedded_payload_parses(self, artifacts):
        html = render_dashboard(metrics_path=artifacts["metrics"])
        _, _, rest = html.partition('id="repro-stats">')
        embedded, _, _ = rest.partition("</script>")
        payload = json.loads(embedded)
        assert payload["cache"]["lookups"] == 4
        assert payload["interpreter"]["instructions"] == 1_000

    def test_missing_artifacts_degrade(self, tmp_path):
        html = render_dashboard(
            metrics_path=str(tmp_path / "nope.json"),
            timeseries_path=str(tmp_path / "nope.jsonl"),
            bench_dir=str(tmp_path / "nope"),
        )
        assert "no artifacts to report" in html


class TestBenchHistory:
    @pytest.fixture
    def helpers(self, tmp_path, monkeypatch):
        spec = importlib.util.spec_from_file_location(
            "bench_helpers_under_test", REPO / "benchmarks" / "helpers.py"
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
        yield module
        del sys.modules[spec.name]

    def test_append_history_records(self, helpers, tmp_path):
        helpers.append_history("table-x", "mean_s", 1.25, sha="abc1234")
        helpers.append_history("table-x", "mean_s", 1.30, sha="def5678")
        lines = (tmp_path / helpers.HISTORY_FILE).read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["value"] for r in records] == [1.25, 1.3]
        assert records[0]["git_sha"] == "abc1234"
        assert all(r["bench"] == "table-x" and r["metric"] == "mean_s" for r in records)

    def test_append_history_defaults_to_current_sha(self, helpers, tmp_path):
        helpers.append_history("table-y", "mean_s", 0.5)
        (record,) = [
            json.loads(line)
            for line in (tmp_path / helpers.HISTORY_FILE).read_text().splitlines()
        ]
        assert record["git_sha"]  # real sha inside the repo, "unknown" outside
