"""Tests for the span tracer.

Contract: disabled hands out one shared no-op span; enabled spans nest
(parent ids follow the stack), close into plain-dict records with
monotonic timings, and worker spans fold in via ``adopt`` with their
roots re-parented under the open span.
"""

import pytest

from repro.obs.metrics import METRICS
from repro.obs.trace import _NULL_SPAN, TRACER, Tracer, load_trace


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


@pytest.fixture(autouse=True)
def _global_obs_reset():
    """Keep the process-wide singletons quiet regardless of test order."""
    yield
    METRICS.disable()
    METRICS.reset()
    TRACER.disable()
    TRACER.drain()


class TestDisabled:
    def test_disabled_by_default(self):
        assert not Tracer().enabled

    def test_disabled_span_is_shared_null(self):
        t = Tracer()
        assert t.span("a") is t.span("b") is _NULL_SPAN
        with t.span("a"):
            pass
        assert t.drain() == []


class TestSpans:
    def test_span_record_fields(self, tracer):
        with tracer.span("work", experiment="table-load-values"):
            pass
        (record,) = tracer.drain()
        assert record["name"] == "work"
        assert record["span_id"] == "s1"
        assert record["parent_id"] is None
        assert record["attrs"] == {"experiment": "table-load-values"}
        assert record["t_start_s"] >= 0.0
        assert record["duration_s"] >= 0.0

    def test_nesting_sets_parent_ids(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        records = {r["name"]: r for r in tracer.drain()}
        assert records["outer"]["parent_id"] is None
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["inner2"]["parent_id"] == records["outer"]["span_id"]

    def test_children_close_before_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [r["name"] for r in tracer.drain()]
        assert names == ["inner", "outer"]

    def test_ids_sequential_and_prefixed(self):
        t = Tracer()
        t.enable(prefix="gcc")
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        assert [r["span_id"] for r in t.drain()] == ["gcc/s1", "gcc/s2"]

    def test_enable_resets_serial(self, tracer):
        with tracer.span("a"):
            pass
        tracer.drain()
        tracer.enable()
        with tracer.span("b"):
            pass
        assert tracer.drain()[0]["span_id"] == "s1"

    def test_span_survives_exception(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = tracer.drain()
        assert record["name"] == "doomed"
        assert not tracer._stack  # stack unwound despite the exception

    def test_metrics_delta_attached_when_metrics_enabled(self, tracer):
        METRICS.reset()
        METRICS.enable()
        METRICS.inc("before_span", 10)
        with tracer.span("counted"):
            METRICS.inc("tnv.clears", 3)
        (record,) = tracer.drain()
        # Only counters that moved inside the span appear, as deltas.
        assert record["metrics"] == {"tnv.clears": 3}

    def test_no_metrics_key_when_metrics_disabled(self, tracer):
        with tracer.span("plain"):
            pass
        assert "metrics" not in tracer.drain()[0]


class TestAdopt:
    def _worker_spans(self):
        worker = Tracer()
        worker.enable(prefix="gcc")
        with worker.span("root"):
            with worker.span("leaf"):
                pass
        return worker.drain()

    def test_adopt_reparents_roots_under_open_span(self, tracer):
        with tracer.span("run_all") as parent:
            tracer.adopt(self._worker_spans())
        records = {r["name"]: r for r in tracer.drain()}
        assert records["root"]["parent_id"] == parent.span_id
        assert records["leaf"]["parent_id"] == "gcc/s1"  # intra-worker link kept

    def test_adopt_without_open_span_keeps_roots(self, tracer):
        tracer.adopt(self._worker_spans())
        records = {r["name"]: r for r in tracer.drain()}
        assert records["root"]["parent_id"] is None

    def test_adopt_noop_when_disabled(self):
        t = Tracer()
        t.adopt(self._worker_spans())
        assert t.drain() == []


class TestPersistence:
    def test_write_jsonl_roundtrip(self, tracer, tmp_path):
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        assert tracer.drain() == []  # write drains the buffer
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        spans = load_trace(str(path))
        assert {s["name"] for s in spans} == {"outer", "inner"}

    def test_load_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "a", "span_id": "s1"}\n\n')
        assert len(load_trace(str(path))) == 1
