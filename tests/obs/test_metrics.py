"""Tests for the metrics registry.

The registry's contract: disabled is a no-op, enabled counts, snapshots
are deterministic (sorted keys, no wall-clock fields), and merge
combines worker snapshots the obvious way (counters add, gauges max,
timers combine).
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, load_snapshot


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.enable()
    return reg


class TestDisabled:
    def test_disabled_by_default(self):
        reg = MetricsRegistry()
        assert not reg.enabled

    def test_disabled_inc_is_noop(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.gauge("g", 3)
        reg.observe("t", 0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["timers"] == {}

    def test_disabled_timer_is_shared_noop(self):
        reg = MetricsRegistry()
        timer_a = reg.time("a")
        timer_b = reg.time("b")
        assert timer_a is timer_b  # one shared null object, no allocation
        with timer_a:
            pass
        assert reg.snapshot()["timers"] == {}

    def test_disable_keeps_existing_data(self, registry):
        registry.inc("kept")
        registry.disable()
        registry.inc("dropped")
        assert registry.snapshot()["counters"] == {"kept": 1}


class TestCounting:
    def test_inc_default_and_n(self, registry):
        registry.inc("a")
        registry.inc("a", 5)
        assert registry.snapshot()["counters"]["a"] == 6

    def test_gauge_overwrites(self, registry):
        registry.gauge("depth", 3)
        registry.gauge("depth", 1)
        assert registry.snapshot()["gauges"]["depth"] == 1

    def test_timer_records_count_total_max(self, registry):
        with registry.time("phase"):
            pass
        with registry.time("phase"):
            pass
        timer = registry.snapshot()["timers"]["phase"]
        assert timer["count"] == 2
        assert timer["total_s"] >= timer["max_s"] >= 0.0

    def test_timer_tracks_min(self, registry):
        registry.observe("phase", 0.5)
        registry.observe("phase", 0.1)
        registry.observe("phase", 0.3)
        timer = registry.snapshot()["timers"]["phase"]
        assert timer["min_s"] == pytest.approx(0.1)
        assert timer["max_s"] == pytest.approx(0.5)

    def test_reset_clears_everything(self, registry):
        registry.inc("a")
        registry.gauge("g", 1)
        registry.observe("t", 0.1)
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "timers": {}, "hists": {}}


class TestDeterminism:
    def test_snapshot_keys_sorted(self, registry):
        for name in ("zebra", "alpha", "mid"):
            registry.inc(name)
            registry.gauge(name, 1)
        snap = registry.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])
        assert list(snap["gauges"]) == sorted(snap["gauges"])

    def test_identical_runs_identical_snapshots(self):
        def build():
            reg = MetricsRegistry()
            reg.enable()
            reg.inc("b", 2)
            reg.inc("a")
            reg.gauge("g", 7)
            return reg.snapshot()

        assert json.dumps(build()) == json.dumps(build())

    def test_counters_and_gauges_carry_no_time_fields(self, registry):
        registry.inc("events")
        registry.gauge("depth", 2)
        snap = registry.snapshot()
        # The comparable sections are pure numbers keyed by name; any
        # timing lives exclusively under "timers".
        assert all(isinstance(v, int) for v in snap["counters"].values())
        assert all(isinstance(v, (int, float)) for v in snap["gauges"].values())


class TestMerge:
    def test_counters_add(self, registry):
        registry.inc("events", 3)
        registry.merge({"counters": {"events": 4, "new": 1}, "gauges": {}, "timers": {}})
        counters = registry.snapshot()["counters"]
        assert counters["events"] == 7
        assert counters["new"] == 1

    def test_gauges_take_max(self, registry):
        registry.gauge("peak", 5)
        registry.merge({"counters": {}, "gauges": {"peak": 3, "other": 9}, "timers": {}})
        gauges = registry.snapshot()["gauges"]
        assert gauges["peak"] == 5
        assert gauges["other"] == 9

    def test_timers_combine(self, registry):
        registry.observe("phase", 0.2)
        registry.merge(
            {
                "counters": {},
                "gauges": {},
                "timers": {"phase": {"count": 2, "total_s": 0.5, "max_s": 0.4}},
            }
        )
        timer = registry.snapshot()["timers"]["phase"]
        assert timer["count"] == 3
        assert timer["total_s"] == pytest.approx(0.7)
        assert timer["max_s"] == pytest.approx(0.4)

    def test_timers_merge_min(self, registry):
        registry.observe("phase", 0.2)
        registry.merge(
            {
                "counters": {},
                "gauges": {},
                "timers": {
                    "phase": {"count": 1, "total_s": 0.05, "max_s": 0.05, "min_s": 0.05}
                },
            }
        )
        timer = registry.snapshot()["timers"]["phase"]
        assert timer["min_s"] == pytest.approx(0.05)
        assert timer["max_s"] == pytest.approx(0.2)

    def test_timers_merge_legacy_snapshot_without_min(self, registry):
        registry.observe("phase", 0.2)
        registry.merge(
            {
                "counters": {},
                "gauges": {},
                "timers": {"phase": {"count": 1, "total_s": 0.4, "max_s": 0.4}},
            }
        )
        # Pre-min_s snapshots fall back to max_s as the merged minimum.
        timer = registry.snapshot()["timers"]["phase"]
        assert timer["min_s"] == pytest.approx(0.2)

    def test_merge_respects_disabled(self):
        reg = MetricsRegistry()
        reg.merge({"counters": {"x": 1}, "gauges": {}, "timers": {}})
        assert reg.snapshot()["counters"] == {}


class TestPersistence:
    def test_write_and_load_roundtrip(self, registry, tmp_path):
        registry.inc("a", 2)
        path = tmp_path / "metrics.json"
        registry.write(str(path))
        snap = load_snapshot(str(path))
        assert snap == registry.snapshot()

    def test_load_snapshot_missing_file(self, tmp_path):
        assert load_snapshot(str(tmp_path / "nope.json")) is None

    def test_load_snapshot_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_snapshot(str(path)) is None
