"""Fixed-bucket log2 histograms: bucketing, quantiles, merges, rendering."""

import json
import random

import pytest

from repro.obs.hist import (
    DEFAULT_BUCKETS,
    Histogram,
    merge_hist_snapshots,
    render_prometheus_hist,
)
from repro.obs.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# bucketing
# ----------------------------------------------------------------------


def test_bucket_zero_covers_up_to_base():
    hist = Histogram("latency")
    hist.observe(0.0)
    hist.observe(5e-7)
    hist.observe(1e-6)  # exactly base — inclusive upper bound
    assert hist.buckets == {0: 3}


def test_power_of_two_boundaries_are_exact():
    """Bucket i's upper bound base*2**i lands *in* bucket i, and the
    next representable float above it lands in bucket i+1 — exact
    edges are what makes every process bucket identically."""
    import math

    for i in range(1, 10):
        hist = Histogram("size")
        hist.observe(2.0 ** i)
        hist.observe(math.nextafter(2.0 ** i, float("inf")))
        assert hist.buckets == {i: 1, i + 1: 1}


def test_overflow_bucket_catches_the_tail():
    hist = Histogram("latency", nbuckets=4)
    hist.observe(1.0)  # way past 1µs * 2**4
    assert hist.overflow == 1
    assert hist.count == 1
    assert not hist.buckets


def test_negative_values_clamp_to_bucket_zero():
    hist = Histogram("latency")
    hist.observe(-1.0)
    assert hist.buckets == {0: 1}
    assert hist.vmin == -1.0


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        Histogram("temperature")


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------


def test_count_total_mean_min_max():
    hist = Histogram("size")
    for value in (1, 2, 3, 10):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == 16
    assert hist.mean == 4.0
    assert (hist.vmin, hist.vmax) == (1.0, 10.0)


def test_empty_quantile_is_zero():
    assert Histogram().quantile(0.5) == 0.0


def test_quantiles_are_clamped_to_observed_range():
    hist = Histogram("latency")
    hist.observe(3e-6)
    assert hist.quantile(0.0) == 3e-6
    assert hist.quantile(1.0) == 3e-6


def test_quantile_accuracy_within_bucket_resolution():
    """The estimate can be off by at most one bucket's width — for a
    log2 grid that means within 2x of the true order statistic."""
    rng = random.Random(42)
    values = [rng.uniform(1e-5, 1e-1) for _ in range(5000)]
    hist = Histogram("latency")
    for value in values:
        hist.observe(value)
    values.sort()
    for q in (0.5, 0.9, 0.99):
        true = values[int(q * len(values)) - 1]
        estimate = hist.quantile(q)
        assert true / 2 <= estimate <= true * 2


def test_quantile_in_overflow_returns_max():
    hist = Histogram("latency", nbuckets=2)
    hist.observe(1e-6)
    hist.observe(7.0)  # overflow
    assert hist.quantile(0.99) == 7.0


# ----------------------------------------------------------------------
# merge + snapshot discipline
# ----------------------------------------------------------------------


def _observed(values, kind="latency"):
    hist = Histogram(kind)
    for value in values:
        hist.observe(value)
    return hist


def test_snapshot_round_trip_is_identical():
    hist = _observed([1e-6, 3e-4, 0.25, 80.0])
    clone = Histogram.from_snapshot(hist.snapshot())
    assert clone.snapshot() == hist.snapshot()
    assert clone.quantile(0.5) == hist.quantile(0.5)


def test_snapshot_survives_json():
    hist = _observed([5e-5, 2e-3])
    snap = json.loads(json.dumps(hist.snapshot()))
    assert Histogram.from_snapshot(snap).snapshot() == hist.snapshot()


def test_merge_equals_observing_everything_in_one():
    rng = random.Random(7)
    a_values = [rng.uniform(1e-6, 1.0) for _ in range(200)]
    b_values = [rng.uniform(1e-6, 100.0) for _ in range(200)]
    merged = _observed(a_values)
    merged.merge(_observed(b_values))
    assert merged.snapshot() == _observed(a_values + b_values).snapshot()


def test_merge_is_associative_and_commutative():
    """Exact snapshot equality regardless of merge order — the property
    that lets shard generations and worker payloads combine freely.
    (Sums are integer units precisely so this holds to the last bit.)"""
    rng = random.Random(13)
    parts = [
        [rng.uniform(1e-6, 10.0) for _ in range(100)] for _ in range(3)
    ]
    a, b, c = (_observed(part) for part in parts)

    ab_c = _observed(parts[0])
    ab_c.merge(b)
    ab_c.merge(c)
    c_ba = _observed(parts[2])
    c_ba.merge(_observed(parts[1]))
    c_ba.merge(_observed(parts[0]))
    assert ab_c.snapshot() == c_ba.snapshot()


def test_merge_rejects_kind_mismatch():
    with pytest.raises(ValueError):
        Histogram("latency").merge(Histogram("size"))


def test_merge_hist_snapshots_map_form():
    a = {"x": _observed([1e-6]).snapshot()}
    b = {"x": _observed([1e-3]).snapshot(), "y": _observed([1], "size").snapshot()}
    merged = merge_hist_snapshots(a, b)
    assert merged is a
    assert merged["x"]["count"] == 2
    assert merged["y"] == b["y"]
    # the new entry is a copy, not an alias into the source map
    assert merged["y"] is not b["y"]


# ----------------------------------------------------------------------
# registry integration
# ----------------------------------------------------------------------


def test_registry_hosts_histograms_behind_the_gate():
    registry = MetricsRegistry()
    registry.observe_hist("lat", 1e-3)  # disabled: dropped
    registry.enable()
    registry.observe_hist("lat", 1e-3)
    registry.observe_hist("events", 64, kind="size")
    snap = registry.snapshot()
    assert snap["hists"]["lat"]["count"] == 1
    assert snap["hists"]["events"]["kind"] == "size"
    registry.reset()
    assert registry.snapshot()["hists"] == {}


def test_registry_merge_folds_hists():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    parent.enable()
    worker.enable()
    parent.observe_hist("lat", 1e-4)
    worker.observe_hist("lat", 1e-2)
    worker.observe_hist("other", 1.0)
    parent.merge(worker.snapshot())
    snap = parent.snapshot()
    assert snap["hists"]["lat"]["count"] == 2
    assert snap["hists"]["other"]["count"] == 1


# ----------------------------------------------------------------------
# prometheus exposition
# ----------------------------------------------------------------------


def test_prometheus_hist_rendering():
    hist = _observed([1e-6, 1e-6, 5.0])
    lines = render_prometheus_hist("repro_lat_seconds", hist.snapshot())
    assert lines[0] == "# TYPE repro_lat_seconds histogram"
    buckets = [line for line in lines if "_bucket" in line]
    assert len(buckets) == DEFAULT_BUCKETS + 1  # dense grid + +Inf
    # cumulative: first bucket already holds the two 1µs observations
    assert buckets[0] == 'repro_lat_seconds_bucket{le="1e-06"} 2'
    assert buckets[-1] == 'repro_lat_seconds_bucket{le="+Inf"} 3'
    assert any(line.startswith("repro_lat_seconds_sum ") for line in lines)
    assert "repro_lat_seconds_count 3" in lines


def test_prometheus_hist_labels_splice_into_every_sample():
    lines = render_prometheus_hist(
        "repro_q", _observed([1], "size").snapshot(), labels='shard="3"'
    )
    assert 'repro_q_bucket{le="1",shard="3"} 1' in lines
    assert 'repro_q_sum{shard="3"} 1' in lines
    assert 'repro_q_count{shard="3"} 1' in lines
