"""Tests for ``repro inspect``: TNV health flags and the report views.

The report's contract: flags fire on the documented thresholds and
only with enough clearing passes to mean something, the trajectory is
a pure function of the value stream, and the full report is
deterministic (golden-stable) for a deterministic workload.
"""

import pytest

from repro.core.sites import SiteKind
from repro.core.tnv import TNVTable
from repro.obs.inspect import (
    health_flags,
    inspect_workload,
    render_overview,
    window_trajectory,
)


def _health(**overrides):
    base = {
        "resident": 10,
        "capacity": 10,
        "steady": 5,
        "steady_occupancy": 1.0,
        "clear_occupancy": 1.0,
        "clears": 10,
        "evictions": 0,
        "promotions": 3,
        "turnover": 0,
        "last_turnover": 0,
        "saturated_clears": 0,
        "churn": 0.0,
        "promotion_rate": 0.3,
    }
    base.update(overrides)
    return base


class TestHealthFlags:
    def test_healthy_site_has_no_flags(self):
        assert health_flags(_health()) == []

    def test_high_churn(self):
        # 5 clear slots, > 2.5 evicted per clearing pass on average
        assert "high-churn" in health_flags(_health(churn=3.0))
        assert "high-churn" not in health_flags(_health(churn=2.0))

    def test_high_churn_needs_two_clears(self):
        assert health_flags(_health(churn=5.0, clears=1)) == []

    def test_saturated(self):
        assert "saturated" in health_flags(_health(saturated_clears=5))
        assert "saturated" not in health_flags(_health(saturated_clears=4))

    def test_never_promoted(self):
        flagged = _health(promotions=0, turnover=7)
        assert "never-promoted" in health_flags(flagged)
        # no turnover means nothing ever competed for promotion: healthy
        assert "never-promoted" not in health_flags(_health(promotions=0, turnover=0))

    def test_flags_from_real_table(self):
        # 12 distinct values cycling through a 4-slot table every
        # interval: the clear part churns and nothing ever promotes.
        table = TNVTable(capacity=4, steady=2, clear_interval=8)
        for round_index in range(6):
            for value in range(12):
                table.record((round_index * 12 + value) % 24)
        flags = health_flags(table.health())
        assert "high-churn" in flags
        assert "saturated" in flags


class TestWindowTrajectory:
    def test_invariant_stream(self):
        rows = window_trajectory([7] * 10, window=5)
        assert len(rows) == 2
        assert all(row["inv_top1"] == 1.0 for row in rows)
        assert all(row["lvp"] == 1.0 for row in rows)
        assert all(row["top_value"] == 7 for row in rows)

    def test_phase_change_shows_in_windows(self):
        rows = window_trajectory([1] * 8 + [2] * 8, window=8)
        assert rows[0]["top_value"] == 1
        assert rows[1]["top_value"] == 2
        assert rows[0]["distinct"] == rows[1]["distinct"] == 1

    def test_alternating_stream_has_zero_lvp(self):
        rows = window_trajectory([1, 2] * 4, window=8)
        assert rows[0]["inv_top1"] == 0.5
        assert rows[0]["lvp"] == 0.0

    def test_ragged_final_window(self):
        rows = window_trajectory([1, 1, 1, 2, 2], window=3)
        assert [row["events"] for row in rows] == [3, 2]
        assert rows[1]["window"] == 1


class TestReport:
    SCALE = 0.05

    def test_overview_renders_and_is_deterministic(self):
        first = inspect_workload("compress", scale=self.SCALE)
        second = inspect_workload("compress", scale=self.SCALE)
        assert first == second  # golden-stable
        assert "TNV health, hottest all sites" in first
        assert "drill down with --site N" in first

    def test_overview_kind_filter(self):
        report = inspect_workload("compress", scale=self.SCALE, kind=SiteKind.LOAD)
        assert "hottest load sites" in report

    def test_site_detail_sections(self):
        report = inspect_workload("compress", scale=self.SCALE, site=0)
        assert "TNV contents" in report
        assert "health counter" in report
        assert "trajectory per 2000-event clearing interval" in report

    def test_site_detail_is_deterministic(self):
        first = inspect_workload("compress", scale=self.SCALE, site=0)
        assert first == inspect_workload("compress", scale=self.SCALE, site=0)

    def test_site_out_of_range(self):
        with pytest.raises(IndexError, match="out of range"):
            inspect_workload("compress", scale=self.SCALE, site=10_000)

    def test_overview_empty_database(self):
        from repro.core.profile import ProfileDatabase

        rendered = render_overview(ProfileDatabase(name="empty"))
        assert "(no sites profiled)" in rendered
