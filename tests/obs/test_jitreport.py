"""Tests for the tier-2 specialization report (repro.obs.jitreport).

The journal-analysis helpers are pure functions of an event list, so
most of this file drives them with synthetic events.  The end-to-end
leg runs ``collect`` on the compress workload once (module-scoped) and
pins the acceptance property of the flight deck: at least one guarded
operand the profile predicted stable is flagged ``thrash`` and
attributed to the register whose observed values actually varied.
"""

import json

import pytest

from repro.obs.jitlog import JITLOG
from repro.obs.jitreport import (
    PREDICT_STABLE,
    SURVIVAL_OK,
    VERDICTS,
    collect,
    deopt_taxonomy,
    guard_failures,
    lifecycle_timelines,
    render_report,
    report_payload,
    thrashing_blocks,
    _render_timeline,
)

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def _clean_jitlog():
    JITLOG.disable()
    JITLOG.reset()
    yield
    JITLOG.disable()
    JITLOG.reset()


def _ev(type_, block, seq, **fields):
    return {"seq": seq, "clock": seq, "type": type_, "program": "p",
            "block": block, **fields}


class TestTaxonomy:
    def test_rejects_bucket_by_reason(self):
        events = [
            _ev("reject", 4, 0, reason="min_fused"),
            _ev("reject", 9, 1, reason="benefit"),
            _ev("reject", 12, 2, reason="benefit"),
        ]
        assert deopt_taxonomy(events) == {
            "reject:benefit": 2, "reject:min_fused": 1,
        }

    def test_deopt_runs_classified_by_following_transition(self):
        events = [
            _ev("deopt", 4, 0), _ev("deopt", 4, 1),
            _ev("requicken", 4, 2, bindings=[[3, 7]]),
            _ev("deopt", 4, 3), _ev("deopt", 4, 4),
            _ev("despecialize", 4, 5),
            _ev("deopt", 9, 6),  # never resolved: absorbed
        ]
        assert deopt_taxonomy(events) == {
            "deopt:absorbed": 1,
            "deopt:despecialized": 2,
            "deopt:requickened": 2,
        }

    def test_empty_journal(self):
        assert deopt_taxonomy([]) == {}


class TestGuardFailures:
    def test_rows_aggregate_per_register_sorted_by_fails(self):
        events = [
            _ev("guard_fail", 4, 0, reg=3, expected=7, observed=8),
            _ev("guard_fail", 4, 1, reg=3, expected=7, observed=9),
            _ev("guard_fail", 9, 2, reg=3, expected=1, observed=2),
            _ev("guard_fail", 4, 3, reg=5, expected=0, observed=1),
        ]
        rows = guard_failures(events)
        assert [r["reg"] for r in rows] == [3, 5]
        top = rows[0]
        assert top["fails"] == 3
        assert top["blocks"] == [4, 9]
        assert top["expected"] == [1, 7]
        assert top["observed"] == [2, 8, 9]


class TestTimelines:
    def test_grouped_by_block_in_journal_order(self):
        events = [
            _ev("hot", 4, 0), _ev("quicken", 4, 1, mode="guarded"),
            _ev("hot", 9, 2), _ev("guard_fail", 4, 3, reg=1),
            _ev("deopt", 4, 4),
        ]
        timelines = lifecycle_timelines(events)
        assert set(timelines) == {4, 9}
        # guard_fail is an attribute of the deopt, not a transition.
        assert [e["type"] for e in timelines[4]] == ["hot", "quicken", "deopt"]

    def test_render_collapses_repeats(self):
        transitions = [
            _ev("hot", 4, 0), _ev("quicken", 4, 1, mode="guarded"),
            _ev("deopt", 4, 2), _ev("deopt", 4, 3), _ev("deopt", 4, 4),
            _ev("requicken", 4, 5),
        ]
        assert _render_timeline(transitions) == (
            "counting > hot > guarded > deopt x3 > requicken"
        )


class TestCompressEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        return collect("compress")

    def test_journal_saw_the_full_lifecycle(self, report):
        counts = report.event_counts
        assert counts.get("quicken", 0) >= 1
        assert counts.get("guard_fail", 0) >= 1
        assert counts.get("deopt", 0) >= 1
        assert report.summaries and report.stats["quickened"] >= 1
        # collect() left nothing enabled behind.
        assert not JITLOG.enabled

    def test_thrashing_block_attributed_to_variant_operand(self, report):
        rows = report_payload(report)["predicted_vs_observed"]
        thrash = thrashing_blocks(rows)
        assert thrash, "compress must show at least one thrashing operand"
        row = thrash[0]
        # The profile predicted stability for this operand...
        assert row["inv_top1"] >= PREDICT_STABLE
        # ...but its guard kept failing at run time...
        assert row["fails"] >= 1 and row["survival"] < SURVIVAL_OK
        # ...and the journal attributes those failures to this exact
        # (block, register) pair with both values named.
        fails = [e for e in report.events
                 if e["type"] == "guard_fail"
                 and e["block"] == row["block"] and e["reg"] == row["reg"]]
        assert len(fails) == row["fails"]
        assert all(e["expected"] != e["observed"] for e in fails)

    def test_verdicts_are_from_the_catalog(self, report):
        rows = report_payload(report)["predicted_vs_observed"]
        assert rows and {r["verdict"] for r in rows} <= set(VERDICTS)
        order = [VERDICTS.index(r["verdict"]) for r in rows]
        assert order == sorted(order), "report sorts worst verdicts first"

    def test_render_is_deterministic_and_complete(self, report):
        text = render_report(report)
        assert text == render_report(report)
        for section in ("tier-2 specialization journal",
                        "Per-block lifecycle",
                        "Deopt / reject taxonomy",
                        "Top guard-failing registers",
                        "Predicted vs observed invariance"):
            assert section in text
        assert "thrash" in text

    def test_payload_is_json_serializable(self, report):
        payload = report_payload(report)
        round_tripped = json.loads(json.dumps(payload, sort_keys=True))
        assert round_tripped["workload"] == "compress"
        assert round_tripped["event_counts"] == report.event_counts

    def test_borrowed_journal_keeps_events_for_the_caller(self):
        JITLOG.enable()
        JITLOG.emit("hot", 0, "earlier", 0, count=1)
        report = collect("compress")
        # collect() must not steal the ring: the earlier event and this
        # run's events are both still visible to the --jitlog exporter.
        assert JITLOG.enabled
        assert JITLOG.events()[0]["program"] == "earlier"
        assert JITLOG.total_events > 1
        # ...while the report only saw its own run.
        assert all(e["program"] != "earlier" for e in report.events)
