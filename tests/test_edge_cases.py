"""Edge-case tests across modules: paths the mainline tests don't hit."""

import pytest

from repro.errors import MachineError, WorkloadError


class TestMachineAccessors:
    def test_register_and_memory_helpers(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine

        program = assemble(".data\nv: .word 42\n.text\n.proc main nargs=0\nli r5, 9\nhalt\n.endproc\n")
        machine = Machine(program)
        machine.run()
        assert machine.read_register(5) == 9
        assert machine.read_memory(0) == 42
        machine.write_memory(1, -3)
        assert machine.read_memory(1) == -3

    def test_memory_helper_bounds_checked(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine

        program = assemble(".text\n.proc main nargs=0\nhalt\n.endproc\n")
        machine = Machine(program, memory_words=16)
        with pytest.raises(MachineError):
            machine.read_memory(16)
        with pytest.raises(MachineError):
            machine.write_memory(-1, 0)

    def test_write_memory_wraps_to_64_bits(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine

        program = assemble(".text\n.proc main nargs=0\nhalt\n.endproc\n")
        machine = Machine(program)
        machine.write_memory(0, 2**64 + 5)
        assert machine.read_memory(0) == 5

    def test_block_counts_requires_flag(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine, block_counts

        program = assemble(".text\n.proc main nargs=0\nhalt\n.endproc\n")
        machine = Machine(program)
        machine.run()
        with pytest.raises(MachineError):
            block_counts(machine)

    def test_block_counts_values(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine, block_counts

        source = """
.text
.proc main nargs=0
    li r1, 3
loop:
    dec r1
    bnez r1, loop
    halt
.endproc
"""
        program = assemble(source)
        machine = Machine(program, count_pcs=True)
        machine.run()
        counts = block_counts(machine)
        loop_pc = program.labels["loop"]
        assert counts[loop_pc] == 3  # loop body entered three times


class TestHarnessVerification:
    def test_divergent_reference_raises(self):
        """A workload whose reference disagrees with its program must
        fail loudly — the guarantee that profiles never come from a
        broken simulation."""
        from repro.workloads.harness import profile_workload
        from repro.workloads.registry import Workload, register, unregister

        lying = Workload(
            name="liar-test",
            spec_analogue="(test)",
            description="reference disagrees with the program",
            build_source=lambda: ".text\n.proc main nargs=0\nli r1, 1\nout r1\nhalt\n.endproc\n",
            make_input=lambda variant, scale, rng: [],
            reference=lambda values: [2],  # wrong on purpose
        )
        register(lying)
        try:
            with pytest.raises(WorkloadError):
                profile_workload("liar-test")
        finally:
            unregister("liar-test")


class TestOptimizerBranchFolding:
    def test_taken_branch_folds_to_jump(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import run_program
        from repro.isa.optimize import specialize_procedure

        source = """
.text
.proc main nargs=0
    li r2, 5
    call pick
    out r1
    halt
.endproc
.proc pick nargs=2
    li r9, 3
    bgt r2, r9, big     ; with r2=5 this is always taken
    li r1, 0
    ret
big:
    li r1, 1
    ret
.endproc
"""
        program = assemble(source)
        specialized, report = specialize_procedure(program, "pick", {2: 5})
        assert report.branch_folds == 1
        variant = specialized.procedures["pick__spec"]
        opcodes = [specialized.instructions[pc].opcode for pc in range(variant.start, variant.end)]
        assert "j" in opcodes  # the folded always-taken branch
        # semantics hold when dispatched
        from repro.isa.optimize import patch_call_site

        call_pc = next(i.pc for i in specialized.instructions if i.opcode == "jal")
        patch_call_site(specialized, call_pc, "pick__spec")
        assert run_program(specialized).output == run_program(program).output

    def test_memory_rebase_on_constant_base(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import run_program
        from repro.isa.optimize import patch_call_site, specialize_procedure

        source = """
.data
tab: .word 11, 22, 33
.text
.proc main nargs=0
    la r2, tab
    call fetch
    out r1
    halt
.endproc
.proc fetch nargs=2
    ld r1, 1(r2)
    ret
.endproc
"""
        program = assemble(source)
        base_address = program.data_symbols["tab"]
        specialized, report = specialize_procedure(program, "fetch", {2: base_address})
        assert report.folds >= 1  # ld rebased onto r0
        call_pc = next(i.pc for i in specialized.instructions if i.opcode == "jal")
        patch_call_site(specialized, call_pc, "fetch__spec")
        assert run_program(specialized).output == [22]


class TestTNVSerializationEdge:
    def test_from_dict_with_disabled_clearing(self):
        from repro.core.tnv import TNVTable

        table = TNVTable(capacity=4, steady=2, clear_interval=None)
        table.record_many([1, 2, 2])
        clone = TNVTable.from_dict(table.to_dict())
        assert clone.clear_interval is None
        assert clone.top_value() == 2


class TestConvergenceCurveEdge:
    def test_empty_stream(self):
        from repro.core.convergence import convergence_curve

        points = convergence_curve([], checkpoint=10)
        assert len(points) == 1
        assert points[0].executions == 0
        assert points[0].estimate == 0.0


class TestDiffEdge:
    def test_b_only_sites_respect_min_executions(self):
        from repro.analysis.diff import diff_profiles
        from repro.core.profile import ProfileDatabase
        from repro.core.sites import load_site

        a = ProfileDatabase(name="a")
        b = ProfileDatabase(name="b")
        cold = load_site("p", "f", 1)
        hot = load_site("p", "f", 2)
        b.record(cold, 1)
        for _ in range(50):
            b.record(hot, 1)
        diff = diff_profiles(a, b, min_executions=10)
        assert diff.only_in_b == [hot]

    def test_empty_diff(self):
        from repro.analysis.diff import diff_profiles
        from repro.core.profile import ProfileDatabase

        diff = diff_profiles(ProfileDatabase(), ProfileDatabase())
        assert diff.stable_fraction == 1.0
        assert diff.invariance_correlation() == 1.0
        assert diff.mean_abs_inv_delta() == 0.0


class TestErrorsHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        subclasses = [
            errors.ProfileError,
            errors.AssemblerError,
            errors.MachineError,
            errors.WorkloadError,
            errors.SpecializationError,
            errors.ExperimentError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError)

    def test_assembler_error_without_line(self):
        from repro.errors import AssemblerError

        error = AssemblerError("bad")
        assert error.line is None
        assert "bad" in str(error)


class TestPackageSurface:
    def test_version_exported(self):
        import repro

        assert repro.__version__

    def test_star_exports_resolve(self):
        import repro
        import repro.analysis
        import repro.core
        import repro.isa
        import repro.predictors
        import repro.pyprof
        import repro.specialize
        import repro.workloads

        for module in (
            repro,
            repro.core,
            repro.isa,
            repro.workloads,
            repro.pyprof,
            repro.predictors,
            repro.specialize,
            repro.analysis,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
