"""Tests for profile-guided memoization."""

import pytest

from repro.specialize.memoize import (
    AdaptiveMemoizer,
    MemoCache,
    MemoizabilityEstimate,
    memoizability,
)


def square(x, y):
    return x * x + y


class TestMemoCache:
    def test_miss_then_hit(self):
        cache = MemoCache()
        found, _ = cache.lookup(("a",))
        assert not found
        cache.insert(("a",), 1)
        found, value = cache.lookup(("a",))
        assert found and value == 1

    def test_capacity_evicts_lru(self):
        cache = MemoCache(capacity=2)
        cache.insert(1, "one")
        cache.insert(2, "two")
        cache.lookup(1)  # 1 becomes most recent
        cache.insert(3, "three")  # evicts 2
        assert cache.lookup(2) == (False, None)
        assert cache.lookup(1) == (True, "one")

    def test_hit_rate(self):
        cache = MemoCache()
        cache.insert("k", 0)
        cache.lookup("k")
        cache.lookup("other")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MemoCache(capacity=0)

    def test_len(self):
        cache = MemoCache()
        cache.insert(1, 1)
        assert len(cache) == 1


class TestMemoizability:
    def test_repeating_stream_predicts_high(self):
        calls = [(1, 2)] * 90 + [(i, 0) for i in range(10)]
        estimate = memoizability(square, calls)
        assert estimate.predicted_hit_rate > 0.8
        assert estimate.worth_memoizing()

    def test_unique_stream_predicts_zero(self):
        calls = [(i, i) for i in range(100)]
        estimate = memoizability(square, calls)
        assert estimate.predicted_hit_rate == 0.0
        assert not estimate.worth_memoizing()

    def test_first_occurrences_count_as_misses(self):
        # 10 distinct tuples each appearing twice: hit rate is at most 0.5.
        calls = [(i, 0) for i in range(10)] * 2
        estimate = memoizability(square, calls)
        assert estimate.predicted_hit_rate == pytest.approx(0.5)

    def test_unhashable_calls_are_guaranteed_misses(self):
        calls = [([1], 2)] * 50 + [(3, 4)] * 50

        def f(a, b):
            return b

        estimate = memoizability(f, calls)
        assert estimate.predicted_hit_rate <= 0.5

    def test_empty_stream(self):
        estimate = memoizability(square, [])
        assert estimate.calls == 0
        assert not estimate.worth_memoizing()


class TestAdaptiveMemoizer:
    def test_enables_on_repeating_stream(self):
        memo = AdaptiveMemoizer(warmup_calls=50, threshold=0.5)(square)
        for _ in range(100):
            assert memo(3, 4) == square(3, 4)
        assert memo.memoizing
        assert memo.cache.hits > 0

    def test_declines_on_unique_stream(self):
        memo = AdaptiveMemoizer(warmup_calls=50, threshold=0.5)(square)
        for i in range(100):
            assert memo(i, i) == square(i, i)
        assert not memo.memoizing

    def test_results_always_correct(self):
        memo = AdaptiveMemoizer(warmup_calls=10)(square)
        for i in range(200):
            x = i % 3
            assert memo(x, 1) == square(x, 1)

    def test_unhashable_args_bypass_cache(self):
        def head(items, default):
            return items[0] if items else default

        memo = AdaptiveMemoizer(warmup_calls=5, threshold=0.0)(square)
        # Force-enable path cannot break unhashable calls.
        wrapped = AdaptiveMemoizer(warmup_calls=5, threshold=0.0)(head)
        for i in range(20):
            assert wrapped([i], -1) == i  # distinct lists, correct results

    def test_stale_results_impossible(self):
        # Same shape as the bug class this guards against: two different
        # unhashable arguments must not alias in the cache.
        def total(items):
            return sum(items)

        memo = AdaptiveMemoizer(warmup_calls=2, threshold=0.0)(total)
        assert memo([1, 2]) == 3
        assert memo([1, 2]) == 3
        assert memo([5]) == 5

    def test_wrapper_metadata(self):
        memo = AdaptiveMemoizer()(square)
        assert memo.__name__ == "square"
