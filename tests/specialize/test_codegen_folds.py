"""Fine-grained tests of the Python specializer's folding rules."""

import pytest

from repro.specialize.codegen import specialize_function


def with_or(x, flag):
    if flag or x > 100:
        return 1
    return 0


def with_compare_chain(x, low, high):
    if low < high < 100:
        return x
    return -x


def shadowing(x, mode):
    def mode(v):  # noqa: F811 - deliberately shadows the parameter
        return v + 1

    return mode(x)


def nested_no_shadow(x, mode):
    def bump(v):
        return v + mode

    return bump(x)


def unary(x, negate):
    if negate:
        return -x
    return +x


def tuple_binding(x, dims):
    return x * dims[0] + dims[1]


class TestBooleanFolding:
    def test_or_with_true_constant_prunes(self):
        spec = specialize_function(with_or, {"flag": True})
        assert spec(0) == 1
        assert spec.__vp_pruned__ >= 1

    def test_or_with_false_constant_keeps_other_test(self):
        spec = specialize_function(with_or, {"flag": False})
        assert spec(200) == 1
        assert spec(0) == 0


class TestCompareChains:
    def test_fully_constant_chain_folds(self):
        spec = specialize_function(with_compare_chain, {"low": 1, "high": 50})
        assert spec(9) == 9
        assert spec.__vp_pruned__ >= 1

    def test_false_chain(self):
        spec = specialize_function(with_compare_chain, {"low": 60, "high": 50})
        assert spec(9) == -9


class TestNestedFunctions:
    def test_shadowing_nested_def_refused(self):
        # The body rebinds `mode` (a nested def of the same name);
        # substituting it as a constant would produce wrong code, so
        # the specializer must refuse.
        from repro.errors import SpecializationError

        with pytest.raises(SpecializationError):
            specialize_function(shadowing, {"mode": 99})

    def test_nonshadowing_nested_def_uses_constant(self):
        spec = specialize_function(nested_no_shadow, {"mode": 10})
        assert spec(5) == nested_no_shadow(5, 10) == 15


class TestUnary:
    def test_constant_not_folds(self):
        spec = specialize_function(unary, {"negate": True})
        assert spec(3) == -3
        assert spec.__vp_pruned__ >= 1


class TestNonScalarBindings:
    def test_tuple_constant_substituted(self):
        spec = specialize_function(tuple_binding, {"dims": (3, 4)})
        assert spec(10) == tuple_binding(10, (3, 4)) == 34

    def test_tuple_subscript_folds(self):
        # dims[0] on a constant tuple folds via literal_eval-compatible
        # paths or stays correct if unfolded; semantics either way.
        spec = specialize_function(tuple_binding, {"dims": (3, 4)})
        for x in range(-3, 4):
            assert spec(x) == tuple_binding(x, (3, 4))
