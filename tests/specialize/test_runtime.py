"""Tests for guarded dispatch and adaptive specialization."""

import pytest

from repro.specialize.analysis import BenefitModel, SpecializationCandidate, find_candidates
from repro.specialize.runtime import (
    AdaptiveConfig,
    AdaptiveSpecializer,
    SpecializedFunction,
)


def shape(x, mode):
    if mode == 1:
        return x * 2
    if mode == 2:
        return x + 100
    return -x


def keyword_target(a, b, c):
    return a * 100 + b * 10 + c


class TestSpecializedFunction:
    def test_dispatches_to_variant_on_guard_hit(self):
        sf = SpecializedFunction(shape)
        sf.add_variant({"mode": 1})
        assert sf(10, 1) == 20
        assert sf.guard_hits == 1
        assert sf.guard_misses == 0

    def test_falls_back_on_guard_miss(self):
        sf = SpecializedFunction(shape)
        sf.add_variant({"mode": 1})
        assert sf(10, 2) == 110
        assert sf.guard_misses == 1

    def test_equivalence_over_mixed_stream(self):
        sf = SpecializedFunction(shape)
        sf.add_variant({"mode": 1})
        for x in range(20):
            for mode in (0, 1, 2):
                assert sf(x, mode) == shape(x, mode)

    def test_multiple_variants_first_match_wins(self):
        sf = SpecializedFunction(shape)
        sf.add_variant({"mode": 1})
        sf.add_variant({"mode": 2})
        assert sf(1, 2) == 101
        assert sf.variants[1].hits == 1

    def test_keyword_calls_dispatch(self):
        sf = SpecializedFunction(keyword_target)
        sf.add_variant({"b": 5})
        assert sf(1, b=5, c=2) == keyword_target(1, 5, 2)
        assert sf.guard_hits == 1

    def test_keyword_miss(self):
        sf = SpecializedFunction(keyword_target)
        sf.add_variant({"b": 5})
        assert sf(1, b=6, c=2) == keyword_target(1, 6, 2)
        assert sf.guard_misses == 1

    def test_wrapper_metadata(self):
        sf = SpecializedFunction(shape)
        assert sf.__name__ == "shape"

    def test_no_variants_always_general(self):
        sf = SpecializedFunction(shape)
        assert sf(3, 1) == 6
        assert sf.guard_misses == 1


class TestAdaptiveSpecializer:
    def test_specializes_after_warmup(self):
        @AdaptiveSpecializer(AdaptiveConfig(warmup_calls=50, min_invariance=0.8))
        def hot(x, mode):
            if mode == 3:
                return x + 3
            return x - mode

        for i in range(200):
            assert hot(i, 3) == i + 3
        assert hot.specialized
        assert len(hot.dispatcher.variants) == 1
        assert hot.dispatcher.variants[0].bindings == {"mode": 3}
        assert hot.guard_hits > 0

    def test_does_not_specialize_variant_parameters(self):
        @AdaptiveSpecializer(AdaptiveConfig(warmup_calls=50, min_invariance=0.8))
        def cold(x, mode):
            return x + mode

        for i in range(100):
            cold(i, i % 7)
        assert cold.specialized  # decision made
        assert len(cold.dispatcher.variants) == 0  # nothing qualified

    def test_results_equivalent_across_phases(self):
        @AdaptiveSpecializer(AdaptiveConfig(warmup_calls=20))
        def f(x, k):
            return x * k if k == 2 else x - k

        expected = [f.__wrapped__(i, 2) for i in range(100)]
        actual = [f(i, 2) for i in range(100)]
        assert actual == expected

    def test_unhashable_arguments_tolerated(self):
        @AdaptiveSpecializer(AdaptiveConfig(warmup_calls=10))
        def g(data, mode):
            return len(data) + mode

        for i in range(30):
            assert g([1, 2], 5) == 7


class TestCandidateSelection:
    def test_find_candidates_from_profile(self):
        from repro.core.profile import ProfileDatabase
        from repro.core.sites import python_site

        db = ProfileDatabase()
        stable = python_site("m", "f", "arg1:mode")
        noisy = python_site("m", "f", "arg0:x")
        for i in range(200):
            db.record(stable, 3 if i % 10 else 9)
            db.record(noisy, i)
        candidates = find_candidates(db, min_invariance=0.6, min_executions=50)
        assert [c.site for c in candidates] == [stable]
        assert candidates[0].value == 3
        assert candidates[0].invariance == pytest.approx(0.9, abs=0.02)

    def test_min_executions_filters(self):
        from repro.core.profile import ProfileDatabase
        from repro.core.sites import python_site

        db = ProfileDatabase()
        db.record(python_site("m", "f", "arg0:x"), 1)
        assert find_candidates(db, min_executions=10) == []

    def test_benefit_model_drops_unprofitable(self):
        from repro.core.profile import ProfileDatabase
        from repro.core.sites import python_site

        db = ProfileDatabase()
        site = python_site("m", "f", "arg0:x")
        for _ in range(120):
            db.record(site, 1)
        expensive = BenefitModel(saving_per_call=0.001, specialization_cost=1e9)
        assert find_candidates(db, model=expensive) == []
        cheap = BenefitModel(saving_per_call=1.0, specialization_cost=1.0)
        assert len(find_candidates(db, model=cheap)) == 1


class TestBenefitModel:
    def test_net_benefit_scales_with_invariance(self):
        model = BenefitModel(saving_per_call=1.0, guard_cost=0.3, specialization_cost=0.0)
        from repro.core.sites import python_site

        site = python_site("m", "f", "arg0:x")
        high = SpecializationCandidate(site, 1, invariance=0.9, executions=1000)
        low = SpecializationCandidate(site, 1, invariance=0.2, executions=1000)
        assert model.net_benefit(high) > 0 > model.net_benefit(low)

    def test_breakeven_invariance(self):
        model = BenefitModel(saving_per_call=1.0, guard_cost=0.1, specialization_cost=0.0)
        assert model.breakeven_invariance(1000) == pytest.approx(0.1)

    def test_breakeven_clamped_to_one(self):
        model = BenefitModel(saving_per_call=0.01, guard_cost=0.5, specialization_cost=100.0)
        assert model.breakeven_invariance(10) == 1.0

    def test_breakeven_degenerate(self):
        assert BenefitModel(saving_per_call=0.0).breakeven_invariance(100) == 1.0
        assert BenefitModel().breakeven_invariance(0) == 1.0
