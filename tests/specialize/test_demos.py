"""Tests for the specialization demo workloads."""

import pytest

from repro.specialize.codegen import specialize_function
from repro.specialize.demos import DEMOS, checksum_block, demo_calls, filter_signal, render_row


class TestDemoFunctions:
    def test_filter_signal_modes(self):
        samples = [1, 2, 3]
        assert filter_signal(samples, 0, 2) == 12
        assert filter_signal(samples, 1, 8) == (8 >> 2) + (16 >> 2) + (24 >> 2)
        assert filter_signal(samples, 2, 2) == 1 + 0 + 1
        assert filter_signal(samples, 3, 2) == (1 ^ 2) + (2 ^ 2) + (3 ^ 2)

    def test_checksum_deterministic(self):
        assert checksum_block([1, 2, 3], 0xEDB8, 0xFFFF) == checksum_block(
            [1, 2, 3], 0xEDB8, 0xFFFF
        )

    def test_checksum_sensitive_to_poly(self):
        assert checksum_block([1, 2, 3], 0xEDB8, 0) != checksum_block([1, 2, 3], 0x1021, 0)

    def test_render_row_modes(self):
        assert render_row([1], 4, 0) == "   1"
        assert render_row([1], 4, 1) == "1   "
        assert render_row([1], 4, 2) == " 1  "


class TestCallStreams:
    @pytest.mark.parametrize("demo", DEMOS, ids=lambda d: d.name)
    def test_deterministic(self, demo):
        assert demo_calls(demo, "train", 20) == demo_calls(demo, "train", 20)

    @pytest.mark.parametrize("demo", DEMOS, ids=lambda d: d.name)
    def test_invariant_params_actually_semi_invariant(self, demo):
        from collections import Counter
        import inspect

        calls = demo_calls(demo, "train", 200)
        names = list(inspect.signature(demo.func).parameters)
        for param in demo.invariant_params:
            index = names.index(param)
            counts = Counter(call[index] for call in calls)
            top_share = counts.most_common(1)[0][1] / len(calls)
            assert top_share >= 0.75, f"{demo.name}.{param} not semi-invariant"

    @pytest.mark.parametrize("demo", DEMOS, ids=lambda d: d.name)
    def test_specialization_preserves_semantics(self, demo):
        import inspect

        calls = demo_calls(demo, "test", 30)
        names = list(inspect.signature(demo.func).parameters)
        # Bind every declared-invariant parameter to its most common value.
        from collections import Counter

        bindings = {}
        for param in demo.invariant_params:
            index = names.index(param)
            bindings[param] = Counter(c[index] for c in calls).most_common(1)[0][0]
        spec = specialize_function(demo.func, bindings)
        for call in calls:
            bound = dict(zip(names, call))
            if all(bound[k] == v for k, v in bindings.items()):
                stripped = [v for k, v in bound.items() if k not in bindings]
                assert spec(*stripped) == demo.func(*call)
