"""Tests for specialized-code generation."""

import pytest

from repro.errors import SpecializationError
from repro.specialize.codegen import specialize_function

GLOBAL_TABLE = {"a": 1, "b": 2}


def arith(x, k):
    return x * k + k - 1


def branchy(x, mode):
    if mode == 0:
        return x + 1
    elif mode == 1:
        return x * 2
    else:
        return x - 1


def loopy(values, mode):
    total = 0
    for value in values:
        if mode == 1:
            total += value
        else:
            total -= value
    return total


def boolean(x, strict):
    if strict and x > 0:
        return 1
    return 0


def with_default(x, factor=2):
    return x * factor


def uses_global(x, key):
    return GLOBAL_TABLE[key] + x


def ternary(x, mode):
    return (x + 1) if mode == 1 else (x - 1)


def while_guarded(x, enabled):
    while enabled:
        return x * 10
    return x


def nonliteral(x, table):
    return table[x % len(table)]


class TestEquivalence:
    @pytest.mark.parametrize("x", [-3, 0, 5, 100])
    def test_arith(self, x):
        spec = specialize_function(arith, {"k": 7})
        assert spec(x) == arith(x, 7)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_branchy_any_binding(self, mode):
        spec = specialize_function(branchy, {"mode": mode})
        for x in range(-2, 3):
            assert spec(x) == branchy(x, mode)

    def test_loopy(self):
        spec = specialize_function(loopy, {"mode": 1})
        assert spec([1, 2, 3]) == loopy([1, 2, 3], 1)

    def test_boolean_folding(self):
        spec = specialize_function(boolean, {"strict": False})
        assert spec(5) == boolean(5, False)

    def test_default_arguments_kept(self):
        spec = specialize_function(with_default, {"x": 10})
        assert spec() == with_default(10)
        assert spec(factor=3) == with_default(10, 3)

    def test_global_access_preserved(self):
        spec = specialize_function(uses_global, {"key": "b"})
        assert spec(10) == uses_global(10, "b")

    def test_ternary_pruned(self):
        spec = specialize_function(ternary, {"mode": 1})
        assert spec(10) == 11
        assert spec.__vp_pruned__ >= 1

    def test_while_false_removed(self):
        spec = specialize_function(while_guarded, {"enabled": False})
        assert spec(4) == 4
        assert spec.__vp_pruned__ >= 1

    def test_nonliteral_binding_via_injected_constant(self):
        table = (10, 20, 30)
        spec = specialize_function(nonliteral, {"table": table})
        assert spec(4) == nonliteral(4, table)


class TestFoldingStatistics:
    def test_branch_pruning_counted(self):
        spec = specialize_function(branchy, {"mode": 1})
        assert spec.__vp_pruned__ >= 1

    def test_constant_folds_counted(self):
        def masked(x, bits):
            mask = (1 << bits) - 1
            return x & mask

        spec = specialize_function(masked, {"bits": 8})
        assert spec.__vp_folds__ >= 2  # 1 << 8, then 256 - 1
        assert spec(0x1234) == 0x34

    def test_no_bindings_rejected(self):
        with pytest.raises(SpecializationError):
            specialize_function(arith, {})


class TestSignature:
    def test_bound_parameter_removed(self):
        spec = specialize_function(arith, {"k": 7})
        import inspect

        assert list(inspect.signature(spec, follow_wrapped=False).parameters) == ["x"]

    def test_name_suffixed(self):
        spec = specialize_function(arith, {"k": 7})
        assert spec.__name__ == "arith__spec"


class TestErrors:
    def test_unknown_parameter(self):
        with pytest.raises(SpecializationError):
            specialize_function(arith, {"nope": 1})

    def test_closure_rejected(self):
        captured = 3

        def closed(x):
            return x + captured

        with pytest.raises(SpecializationError):
            specialize_function(closed, {"x": 1})

    def test_builtin_rejected(self):
        with pytest.raises(SpecializationError):
            specialize_function(len, {"obj": []})


class TestSafety:
    def test_division_by_zero_not_folded_away(self):
        def divides(x, d):
            if d != 0:
                return x // d
            return 0

        spec = specialize_function(divides, {"d": 0})
        assert spec(10) == 0

    def test_huge_power_not_folded(self):
        def power(x, e):
            base = 2 ** e
            return x + base

        # Should not hang or overflow at specialization time.
        spec = specialize_function(power, {"e": 10})
        assert spec(1) == 1 + 2**10
